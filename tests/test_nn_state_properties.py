"""Property-based state invariants for the recurrent cells (Hypothesis).

Complements the example-based differential suite
(tests/test_fused_differential.py) with *generated* shapes and inputs.
Each property is a mathematical fact about the cell equations, so it
must hold for any weights and any input — and for both kernel paths:

* LSTM: ``h_t = o * tanh(c_t)`` bounds ``|h| <= 1``; with sigmoid gates
  in (0, 1), ``|c_t| <= f*|c_{t-1}| + i*|g|  <=  |c_{t-1}| + 1``, so
  ``|c_t| <= t + 1`` — the cell state grows at most linearly.
* GRU: ``h_t = z*h_{t-1} + (1-z)*g`` is a convex combination of the
  previous state and a tanh candidate, so ``|h_t| <= max(|h_{t-1}|, 1)``
  and, from ``h_0 = 0``, ``|h| <= 1`` for all time.
* SimpleRNN: ``h = tanh(...)`` gives ``|h| <= 1`` trivially.
* All cells: zero input with zero bias stays exactly at the zero fixed
  point; outputs are always finite for finite inputs; and the fused
  path agrees bitwise with the reference on every generated case (the
  property-level restatement of the differential contract).

The ``@example`` pins are regression anchors: shapes that caught real
bugs (B=1 pooled-view aliasing; odd hidden sizes where differently
shaped GEMMs round differently) stay in the deck forever.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.nn.fused import fused_kernels, reference_kernels
from repro.nn.layers import GRULayer, LSTMLayer, SimpleRNNLayer

# Small bounded shapes keep each case ~milliseconds; the differential
# suite covers the big benchmark shape.
SHAPE = st.tuples(st.integers(1, 5),    # batch
                  st.integers(1, 6),    # steps
                  st.integers(1, 7),    # in_dim
                  st.integers(1, 9))    # units

SEED = st.integers(0, 2**31 - 1)

COMMON = dict(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


def _forward(cls, shape, seed, *, fused=True, scale=1.0):
    batch, steps, in_dim, units = shape
    rng = np.random.default_rng(seed)
    layer = cls(units)
    layer.build([in_dim], rng=rng)
    x = scale * rng.standard_normal((batch, steps, in_dim))
    with fused_kernels(fused):
        y = layer.forward([x])
        layer._cache = None
    return layer, x, y


class TestLSTMStateInvariants:
    @given(shape=SHAPE, seed=SEED)
    @example(shape=(1, 1, 3, 5), seed=0)     # aliasing regression shape
    @example(shape=(1, 4, 7, 3), seed=7)     # serving regression shape
    @example(shape=(2, 6, 5, 7), seed=123)   # odd hidden size
    @settings(**COMMON)
    def test_hidden_state_bounded_by_one(self, shape, seed):
        _, _, y = _forward(LSTMLayer, shape, seed, scale=3.0)
        assert np.all(np.abs(y) <= 1.0)
        assert np.all(np.isfinite(y))

    @given(shape=SHAPE, seed=SEED)
    @example(shape=(1, 6, 2, 4), seed=42)
    @settings(**COMMON)
    def test_cell_state_grows_at_most_linearly(self, shape, seed):
        batch, steps, in_dim, units = shape
        rng = np.random.default_rng(seed)
        layer = LSTMLayer(units)
        layer.build([in_dim], rng=rng)
        x = 3.0 * rng.standard_normal((batch, steps, in_dim))
        layer.forward([x], training=True)
        cs = layer._cache[3]  # (T, B, H) cell states
        for t in range(steps):
            assert np.all(np.abs(cs[t]) <= t + 1.0 + 1e-12), f"step {t}"

    @given(shape=SHAPE, seed=SEED)
    @example(shape=(1, 1, 1, 1), seed=0)
    @settings(**COMMON)
    def test_zero_input_zero_bias_is_fixed_point(self, shape, seed):
        batch, steps, in_dim, units = shape
        layer = LSTMLayer(units)
        layer.build([in_dim], rng=seed)
        layer.params["b"][:] = 0.0  # drop the unit forget bias
        x = np.zeros((batch, steps, in_dim))
        y = layer.forward([x])
        # sigm(0)=1/2, tanh(0)=0: c = f*0 + i*0 = 0, h = o*tanh(0) = 0.
        np.testing.assert_array_equal(y, np.zeros_like(y))


class TestGRUStateInvariants:
    @given(shape=SHAPE, seed=SEED)
    @example(shape=(1, 1, 3, 5), seed=0)     # aliasing regression shape
    @example(shape=(3, 5, 4, 7), seed=11)    # odd hidden size
    @settings(**COMMON)
    def test_hidden_state_is_convex_combination(self, shape, seed):
        """|h_t| <= max(|h_{t-1}|_inf, 1) elementwise; from h_0 = 0 the
        whole trajectory stays inside the unit box."""
        _, _, y = _forward(GRULayer, shape, seed, scale=3.0)
        assert np.all(np.abs(y) <= 1.0)
        assert np.all(np.isfinite(y))

    @given(shape=SHAPE, seed=SEED)
    @example(shape=(2, 3, 2, 2), seed=5)
    @settings(**COMMON)
    def test_zero_input_zero_bias_is_fixed_point(self, shape, seed):
        batch, steps, in_dim, units = shape
        layer = GRULayer(units)
        layer.build([in_dim], rng=seed)
        x = np.zeros((batch, steps, in_dim))
        y = layer.forward([x])
        # z=r=1/2, g=tanh(0)=0, h' = z*0 + (1-z)*0 = 0.
        np.testing.assert_array_equal(y, np.zeros_like(y))


class TestSimpleRNNStateInvariants:
    @given(shape=SHAPE, seed=SEED)
    @example(shape=(1, 2, 4, 6), seed=0)
    @settings(**COMMON)
    def test_tanh_bounds_hidden_state(self, shape, seed):
        _, _, y = _forward(SimpleRNNLayer, shape, seed, scale=5.0)
        assert np.all(np.abs(y) <= 1.0)
        assert np.all(np.isfinite(y))


class TestFusedReferenceProperty:
    """The differential contract as a generated property: any cell, any
    shape, any weights — fused forward is bitwise the reference's."""

    @pytest.mark.parametrize("cls", [LSTMLayer, GRULayer, SimpleRNNLayer],
                             ids=["lstm", "gru", "rnn"])
    @given(shape=SHAPE, seed=SEED)
    @example(shape=(1, 1, 3, 5), seed=0)
    @example(shape=(1, 4, 7, 3), seed=1)
    @example(shape=(2, 6, 5, 7), seed=2)
    @settings(**COMMON)
    def test_forward_bitwise(self, cls, shape, seed):
        layer, x, y_fused = _forward(cls, shape, seed)
        with reference_kernels():
            y_ref = layer.forward([x])
            layer._cache = None
        np.testing.assert_array_equal(y_fused.view(np.uint8),
                                      y_ref.view(np.uint8))
