"""Property tests of the serving wire protocol (repro.serve.protocol).

The framing invariants a distributed tier lives or dies by:

* encode∘decode is the identity — headers round-trip as equal JSON
  values and arrays round-trip **bitwise** (including NaN/inf payloads,
  compared on raw bytes);
* every malformed input — truncation at *any* byte boundary, bad magic,
  oversized declared payloads, garbage headers, inconsistent array
  metadata — raises a *typed* error; a reader never hangs and never
  returns garbage;
* a clean close between frames is ``None``, not an exception.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.protocol import (MAX_PAYLOAD, PROTOCOL_MAGIC, BadMagic,
                                  FrameTooLarge, ProtocolError,
                                  TruncatedFrame, decode_message,
                                  encode_frame, encode_message, read_frame)

# -- strategies ----------------------------------------------------------

_SCALARS = st.one_of(
    st.none(), st.booleans(), st.integers(-2**40, 2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20))

#: JSON-encodable headers; "array" is reserved for the codec itself.
headers = st.dictionaries(
    st.text(min_size=1, max_size=12).filter(lambda k: k != "array"),
    st.one_of(_SCALARS, st.lists(_SCALARS, max_size=4)),
    max_size=6)

_DTYPES = st.sampled_from(["<f8", "<f4", "<i8", "<i4", "<u2", "|b1"])


@st.composite
def arrays(draw):
    """Small arrays of varied dtype/shape, NaN and inf included."""
    dtype = np.dtype(draw(_DTYPES))
    shape = tuple(draw(st.lists(st.integers(0, 5), min_size=1,
                                max_size=3)))
    n = int(np.prod(shape)) if shape else 1
    if dtype.kind == "f":
        values = draw(st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=32),
            min_size=n, max_size=n))
    elif dtype.kind == "b":
        values = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    else:
        info = np.iinfo(dtype)
        values = draw(st.lists(st.integers(int(info.min), int(info.max)),
                               min_size=n, max_size=n))
    return np.array(values, dtype=dtype).reshape(shape)


# -- round-trip identity -------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(header=headers)
def test_roundtrip_header_only(header):
    decoded, body = decode_message(encode_message(header))
    assert decoded == json.loads(json.dumps(header))
    assert body is None


@settings(max_examples=60, deadline=None)
@given(header=headers, body=arrays())
def test_roundtrip_with_array(header, body):
    decoded, out = decode_message(encode_message(header, body))
    assert out is not None
    assert out.dtype == body.dtype
    assert out.shape == body.shape
    # Bitwise: NaNs compare unequal by value but identical as bytes.
    assert out.tobytes() == np.ascontiguousarray(body).tobytes()
    for key, value in header.items():
        assert decoded[key] == json.loads(json.dumps(value))
    assert decoded["array"]["shape"] == list(body.shape)


@settings(max_examples=60, deadline=None)
@given(header=headers, body=st.one_of(st.none(), arrays()))
def test_frame_roundtrip_through_stream(header, body):
    frame = encode_frame(header, body)
    reader = io.BytesIO(frame + frame)  # two back-to-back frames
    first = read_frame(reader)
    second = read_frame(reader)
    assert read_frame(reader) is None  # clean EOF at the boundary
    for message in (first, second):
        decoded, out = message
        if body is None:
            assert out is None
        else:
            assert out.tobytes() \
                == np.ascontiguousarray(body).tobytes()


@settings(max_examples=40, deadline=None)
@given(header=headers, body=st.one_of(st.none(), arrays()),
       data=st.data())
def test_truncation_at_every_boundary_raises_typed(header, body, data):
    """A frame cut at ANY strictly-shorter length either raises a typed
    protocol error or (cut=0) reports clean EOF — never hangs, never
    yields a message."""
    frame = encode_frame(header, body)
    cut = data.draw(st.integers(0, len(frame) - 1))
    reader = io.BytesIO(frame[:cut])
    if cut == 0:
        assert read_frame(reader) is None
    else:
        with pytest.raises(ProtocolError):
            read_frame(reader)


@settings(max_examples=60, deadline=None)
@given(junk=st.binary(min_size=8, max_size=64))
def test_garbage_prefix_raises_typed(junk):
    """Arbitrary bytes either fail the magic check or die later with a
    typed protocol error; `read_frame` never returns a message."""
    if junk[:4] == PROTOCOL_MAGIC:  # astronomically unlikely; skip
        return
    with pytest.raises(ProtocolError):
        read_frame(io.BytesIO(junk))


def test_oversized_declared_payload_refused_before_buffering():
    import struct
    huge = struct.pack("!4sI", PROTOCOL_MAGIC, MAX_PAYLOAD + 1)
    with pytest.raises(FrameTooLarge):
        read_frame(io.BytesIO(huge))  # no payload bytes even present


def test_oversized_encode_refused():
    with pytest.raises(FrameTooLarge):
        encode_frame({}, np.zeros(128, dtype=np.float64),
                     max_payload=256)


def test_bad_magic_is_typed():
    frame = bytearray(encode_frame({"type": "x"}))
    frame[:4] = b"NOPE"
    with pytest.raises(BadMagic):
        read_frame(io.BytesIO(bytes(frame)))


# -- malformed payload vocabulary ---------------------------------------

@pytest.mark.parametrize("payload, error", [
    (b"", TruncatedFrame),                      # no header length
    (b"\x00\x00\x00\x10abc", TruncatedFrame),   # header longer than payload
    (b"\x00\x00\x00\x03[1]", ProtocolError),    # JSON but not an object
    (b"\x00\x00\x00\x02{]", ProtocolError),     # undecodable JSON
    (b"\x00\x00\x00\x02{}" + b"xx", ProtocolError),  # body w/o metadata
])
def test_malformed_payloads_raise_typed(payload, error):
    with pytest.raises(error):
        decode_message(payload)


@pytest.mark.parametrize("meta", [
    {"dtype": "<f8"},                         # missing shape
    {"shape": [2]},                           # missing dtype
    {"dtype": "nosuch", "shape": [2]},        # bad dtype
    {"dtype": "|O", "shape": [1]},            # object dtype refused
    {"dtype": "<f8", "shape": [2, -1]},       # negative extent
    {"dtype": "<f8", "shape": [3]},           # byte count mismatch (16B)
    {"dtype": "<f8", "shape": "2"},           # non-list shape
    {"dtype": "<f8", "shape": [True]},        # bool masquerading as int
])
def test_inconsistent_array_metadata_raises_typed(meta):
    header = json.dumps({"array": meta}).encode()
    payload = len(header).to_bytes(4, "big") + header + b"\x00" * 16
    with pytest.raises(ProtocolError):
        decode_message(payload)


def test_object_dtype_refused_on_encode():
    with pytest.raises(ValueError, match="object-dtype"):
        encode_message({}, np.array([object()], dtype=object))


def test_drip_fed_reader_terminates():
    """A frame arriving one byte at a time still decodes (bounded reads
    tolerate short reads) — and a stream that ends mid-drip raises."""

    class Drip(io.RawIOBase):
        def __init__(self, data):
            self.data, self.pos = data, 0

        def read(self, n=-1):
            if self.pos >= len(self.data):
                return b""
            chunk = self.data[self.pos:self.pos + 1]
            self.pos += 1
            return chunk

    body = np.arange(6, dtype=np.float64).reshape(2, 3)
    frame = encode_frame({"type": "forecast"}, body)
    header, out = read_frame(Drip(frame))
    assert header["type"] == "forecast"
    assert out.tobytes() == body.tobytes()
    with pytest.raises(TruncatedFrame):
        read_frame(Drip(frame[:-3]))
