"""Hypothesis properties of the per-task seed derivation.

repro.hpc.parallel's determinism guarantee reduces entirely to three
properties of repro.utils.rng.child_sequence — order-stability,
collision-freedom, and pairwise independence of the derived streams —
so they are pinned here property-based, not example-based.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.rng import (
    as_seed_sequence,
    child_sequence,
    spawn_sequences,
)

ENTROPY = st.integers(min_value=0, max_value=2 ** 64 - 1)
TASK_IDS = st.lists(st.integers(min_value=0, max_value=2 ** 32 - 1),
                    min_size=2, max_size=24, unique=True)


def _draws(root, task_id, n=8):
    return np.random.default_rng(
        child_sequence(root, task_id)).integers(2 ** 63, size=n)


class TestOrderStability:
    @settings(max_examples=30, deadline=None)
    @given(entropy=ENTROPY, ids=TASK_IDS, seed=st.integers(0, 2 ** 16))
    def test_streams_do_not_depend_on_derivation_order(self, entropy, ids,
                                                       seed):
        root = np.random.SeedSequence(entropy)
        in_order = {i: _draws(root, i).tolist() for i in ids}
        shuffled = list(ids)
        np.random.default_rng(seed).shuffle(shuffled)
        reordered = {i: _draws(root, i).tolist() for i in shuffled}
        assert in_order == reordered

    @settings(max_examples=30, deadline=None)
    @given(entropy=ENTROPY, task_id=st.integers(0, 2 ** 32 - 1))
    def test_rederivation_is_stable(self, entropy, task_id):
        root = np.random.SeedSequence(entropy)
        first = _draws(root, task_id)
        again = _draws(np.random.SeedSequence(entropy), task_id)
        assert first.tolist() == again.tolist()


class TestCollisionFreedom:
    @settings(max_examples=30, deadline=None)
    @given(entropy=ENTROPY, ids=TASK_IDS)
    def test_distinct_ids_yield_distinct_streams(self, entropy, ids):
        root = np.random.SeedSequence(entropy)
        fingerprints = {tuple(_draws(root, i).tolist()) for i in ids}
        assert len(fingerprints) == len(ids)

    @settings(max_examples=20, deadline=None)
    @given(entropy=ENTROPY, task_id=st.integers(0, 2 ** 20))
    def test_children_differ_from_their_root(self, entropy, task_id):
        root = np.random.SeedSequence(entropy)
        root_draws = np.random.default_rng(root).integers(2 ** 63, size=8)
        assert _draws(root, task_id).tolist() != root_draws.tolist()

    def test_dense_id_range_is_collision_free(self):
        root = np.random.SeedSequence(123)
        seen = {tuple(_draws(root, i, n=4).tolist()) for i in range(512)}
        assert len(seen) == 512


class TestPairwiseIndependence:
    @settings(max_examples=15, deadline=None)
    @given(entropy=ENTROPY,
           pair=st.tuples(st.integers(0, 2 ** 16),
                          st.integers(0, 2 ** 16)).filter(
               lambda p: p[0] != p[1]))
    def test_streams_are_uncorrelated(self, entropy, pair):
        root = np.random.SeedSequence(entropy)
        n = 512
        a = np.random.default_rng(
            child_sequence(root, pair[0])).standard_normal(n)
        b = np.random.default_rng(
            child_sequence(root, pair[1])).standard_normal(n)
        r = float(np.corrcoef(a, b)[0, 1])
        # Independent streams: r ~ N(0, 1/sqrt(512)), sd ~ 0.044; 0.2 is
        # ~4.5 sigma — a correlated bit stream fails this immediately.
        assert abs(r) < 0.2


class TestAPI:
    def test_spawn_sequences_matches_child_sequence(self):
        root = np.random.SeedSequence(9)
        seqs = spawn_sequences(root, 5)
        assert [s.spawn_key for s in seqs] == \
            [child_sequence(root, i).spawn_key for i in range(5)]

    def test_matches_numpy_spawn_streams(self):
        """child_sequence(root, k) names the same stream numpy's own
        stateful SeedSequence.spawn would hand out as child k."""
        root = np.random.SeedSequence(42)
        spawned = np.random.SeedSequence(42).spawn(4)
        for k, child in enumerate(spawned):
            assert child_sequence(root, k).spawn_key == child.spawn_key

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            child_sequence(np.random.SeedSequence(0), -1)
        with pytest.raises(ValueError, match="non-negative"):
            spawn_sequences(0, -2)

    def test_as_seed_sequence_coercions(self):
        seq = np.random.SeedSequence(5)
        assert as_seed_sequence(seq) is seq
        gen = np.random.default_rng(5)
        assert as_seed_sequence(gen) is gen.bit_generator.seed_seq
        assert as_seed_sequence(5).entropy == 5
        assert as_seed_sequence(None).entropy is not None

    def test_generator_view_and_sequence_view_stay_coordinated(self):
        """Spawning via the generator advances the shared sequence, so
        executor node streams and backend task roots never collide."""
        gen = np.random.default_rng(11)
        node_children = gen.spawn(3)
        task_root = as_seed_sequence(gen).spawn(1)[0]
        assert task_root.spawn_key == (3,)
        assert {c.bit_generator.seed_seq.spawn_key
                for c in node_children} == {(0,), (1,), (2,)}
