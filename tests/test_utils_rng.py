import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn


class TestAsGenerator:
    def test_int_seed_reproducible(self):
        a = as_generator(7).standard_normal(5)
        b = as_generator(7).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).standard_normal(5)
        b = as_generator(2).standard_normal(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough_shares_state(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawn:
    def test_count(self):
        assert len(spawn(0, 5)) == 5

    def test_zero_children(self):
        assert spawn(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn(0, -1)

    def test_children_independent(self):
        a, b = spawn(0, 2)
        assert not np.allclose(a.standard_normal(8), b.standard_normal(8))

    def test_children_reproducible(self):
        first = [g.standard_normal(4) for g in spawn(3, 3)]
        second = [g.standard_normal(4) for g in spawn(3, 3)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_spawn_from_generator_advances(self):
        gen = np.random.default_rng(0)
        a = spawn(gen, 1)[0].standard_normal(4)
        b = spawn(gen, 1)[0].standard_normal(4)
        assert not np.allclose(a, b)
