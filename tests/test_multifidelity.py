"""Multi-fidelity search differential suite (docs/SEARCH.md).

Three exact contracts, all ``==`` rather than approximate:

1. **Backend independence** — an SH/Hyperband campaign is a pure
   function of (scheduler, evaluator, seed): in-process, serial-backend,
   and 1/2/4-worker-pool runs produce identical reports.
2. **Partial-training continuation** — training an architecture to
   epoch ``k`` and continuing to ``m`` is bitwise the uninterrupted
   ``0..m`` training: same weights, same optimizer moments, same RNG
   position, same history.
3. **Interrupt/resume** — a campaign killed mid-rung and resumed from
   its checkpoint replays to exactly the uninterrupted trajectory, and a
   checkpoint refuses to resume under a different scheduler config,
   seed, or evaluator identity.
"""

import numpy as np
import pytest

from repro.nas import (
    ArchitecturePerformanceModel,
    GeneticSearch,
    Hyperband,
    HyperparameterGrid,
    JointArchitectureSpace,
    JointSurrogateEvaluator,
    PartialTrainingEvaluator,
    SuccessiveHalving,
    SurrogateEvaluator,
    load_checkpoint,
    resume_multifidelity_campaign,
    run_multifidelity_campaign,
    scheduler_from_config,
)
from repro.nas.multifidelity import MULTIFIDELITY_FORMAT
from repro.nn.training import Trainer


@pytest.fixture(scope="module")
def model(small_space):
    return ArchitecturePerformanceModel(small_space, seed=0)


@pytest.fixture()
def evaluator(small_space, model):
    return SurrogateEvaluator(small_space, model)


HB = dict(min_epochs=1, max_epochs=20, eta=4, candidate_multiplier=2)


# ---------------------------------------------------------------------------
# Scheduler bracket math
# ---------------------------------------------------------------------------

class TestSchedulers:
    def test_successive_halving_ladder(self):
        sh = SuccessiveHalving(n_candidates=64, min_epochs=1,
                               max_epochs=20, eta=4)
        [bracket] = sh.brackets()
        assert [(r.epochs, r.n_candidates) for r in bracket.rungs] \
            == [(1, 64), (4, 16), (16, 4), (20, 1)]
        assert bracket.n_evaluations == 85

    def test_winner_always_reaches_full_budget(self):
        for n in (1, 3, 16, 64, 100):
            sh = SuccessiveHalving(n_candidates=n, min_epochs=1,
                                   max_epochs=20, eta=4)
            last = sh.brackets()[0].rungs[-1]
            assert last.epochs == 20

    def test_hyperband_portfolio(self):
        hb = Hyperband(min_epochs=1, max_epochs=20, eta=4)
        brackets = hb.brackets()
        # s_max = floor(log_4 20) = 2: three brackets, exploration to
        # exploitation (the docs/SEARCH.md worked example).
        assert [b.index for b in brackets] == [2, 1, 0]
        assert [(r.epochs, r.n_candidates) for r in brackets[0].rungs] \
            == [(1, 16), (4, 4), (20, 1)]
        assert [(r.epochs, r.n_candidates) for r in brackets[1].rungs] \
            == [(5, 6), (20, 1)]
        assert [(r.epochs, r.n_candidates) for r in brackets[2].rungs] \
            == [(20, 3)]

    def test_bracket_limit_and_multiplier(self):
        hb = Hyperband(min_epochs=1, max_epochs=20, eta=4, brackets=1,
                       candidate_multiplier=4)
        brackets = hb.brackets()
        assert len(brackets) == 1
        assert brackets[0].rungs[0].n_candidates == 64

    def test_config_round_trips(self):
        for scheduler in (SuccessiveHalving(n_candidates=27, min_epochs=2,
                                            max_epochs=18, eta=3),
                          Hyperband(**HB)):
            rebuilt = scheduler_from_config(scheduler.config())
            assert rebuilt.config() == scheduler.config()
            assert [b.rungs for b in rebuilt.brackets()] \
                == [b.rungs for b in scheduler.brackets()]

    @pytest.mark.parametrize("bad", [
        dict(n_candidates=0), dict(min_epochs=0), dict(eta=1),
        dict(min_epochs=30, max_epochs=20),
    ])
    def test_invalid_budgets_rejected(self, bad):
        kwargs = dict(n_candidates=8, min_epochs=1, max_epochs=20, eta=4)
        kwargs.update(bad)
        with pytest.raises(ValueError):
            SuccessiveHalving(**kwargs)
        with pytest.raises(ValueError):
            scheduler_from_config({"algorithm": "simulated-annealing"})


# ---------------------------------------------------------------------------
# Backend independence: serial == pooled at every worker count
# ---------------------------------------------------------------------------

class TestBackendIndependence:
    def test_inprocess_equals_serial_backend(self, evaluator):
        hb = Hyperband(**HB)
        a = run_multifidelity_campaign(hb, evaluator, seed=7)
        b = run_multifidelity_campaign(hb, evaluator, seed=7, workers=0)
        assert a == b

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pool_equals_serial(self, evaluator, workers):
        hb = Hyperband(min_epochs=1, max_epochs=20, eta=4)
        serial = run_multifidelity_campaign(hb, evaluator, seed=3,
                                            workers=0)
        pooled = run_multifidelity_campaign(hb, evaluator, seed=3,
                                            workers=workers)
        assert pooled == serial

    def test_successive_halving_pool_equals_serial(self, evaluator):
        sh = SuccessiveHalving(n_candidates=16, min_epochs=2,
                               max_epochs=20, eta=4)
        serial = run_multifidelity_campaign(sh, evaluator, seed=5,
                                            workers=0)
        pooled = run_multifidelity_campaign(sh, evaluator, seed=5,
                                            workers=2)
        assert pooled == serial

    def test_different_seeds_differ(self, evaluator):
        hb = Hyperband(**HB)
        a = run_multifidelity_campaign(hb, evaluator, seed=0)
        b = run_multifidelity_campaign(hb, evaluator, seed=1)
        assert a["best_architecture"] != b["best_architecture"] \
            or a["best_reward"] != b["best_reward"]

    def test_report_shape(self, evaluator):
        hb = Hyperband(**HB)
        report = run_multifidelity_campaign(hb, evaluator, seed=2)
        assert report["completed"] is True
        assert report["algorithm"] == "hyperband"
        assert report["best_is_full_budget"] is True
        assert report["epochs_incremental"] <= report["epochs_fresh"]
        assert len(report["brackets"]) == 3
        ladder = report["brackets"][0]["rungs"]
        # Promotion can only improve the observed rung best.
        assert ladder[0]["n_candidates"] > ladder[-1]["n_candidates"]


# ---------------------------------------------------------------------------
# Partial-training continuation is bitwise the uninterrupted training
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_training():
    rng = np.random.default_rng(0)
    data = (rng.normal(size=(24, 5, 3)), rng.normal(size=(24, 5, 3)),
            rng.normal(size=(8, 5, 3)), rng.normal(size=(8, 5, 3)))
    return data


class TestPartialTraining:
    def make(self, small_space, data, epochs=6):
        return PartialTrainingEvaluator(
            small_space, data,
            trainer=Trainer(epochs=epochs, batch_size=8, patience=None))

    def test_continuation_is_bitwise_uninterrupted(self, small_space,
                                                   tiny_training):
        ev = self.make(small_space, tiny_training)
        arch = small_space.from_index(101)
        straight = ev.evaluate_partial(arch, 6,
                                       np.random.default_rng(42))

        first = ev.evaluate_partial(arch, 2, np.random.default_rng(42))
        second = ev.evaluate_partial(
            arch, 4, state=first.metadata["continuation"])
        third = ev.evaluate_partial(
            arch, 6, state=second.metadata["continuation"])

        assert third.reward == straight.reward
        a = third.metadata["continuation"]
        b = straight.metadata["continuation"]
        assert a["rng"] == b["rng"]  # exact bit-stream position
        for wa, wb in zip(a["weights"], b["weights"]):
            np.testing.assert_array_equal(wa, wb)
        for ma, mb in zip(a["optimizer"]["m"], b["optimizer"]["m"]):
            np.testing.assert_array_equal(ma, mb)
        assert a["history"] == b["history"]

    def test_continuation_validates_architecture_and_epochs(
            self, small_space, tiny_training):
        ev = self.make(small_space, tiny_training)
        arch = small_space.from_index(3)
        first = ev.evaluate_partial(arch, 2, np.random.default_rng(0))
        state = first.metadata["continuation"]
        with pytest.raises(ValueError, match="architecture"):
            ev.evaluate_partial(small_space.from_index(4), 4, state=state)
        with pytest.raises(ValueError, match="epochs"):
            ev.evaluate_partial(arch, 2, state=state)

    def test_early_stopping_trainer_rejected(self, small_space,
                                             tiny_training):
        with pytest.raises(ValueError, match="patience"):
            PartialTrainingEvaluator(
                small_space, tiny_training,
                trainer=Trainer(epochs=6, batch_size=8, patience=2))

    def test_campaign_continuation_equals_fresh(self, small_space,
                                                tiny_training):
        """The in-process campaign path (which threads continuation
        state through the rungs) matches the backend path (which trains
        each rung from scratch under the same lifetime stream)."""
        ev = self.make(small_space, tiny_training, epochs=4)
        sh = SuccessiveHalving(n_candidates=4, min_epochs=1,
                               max_epochs=4, eta=2)
        cont = run_multifidelity_campaign(sh, ev, seed=5)
        fresh = run_multifidelity_campaign(sh, ev, seed=5, workers=0)
        assert cont["best_reward"] == fresh["best_reward"]
        assert cont["best_architecture"] == fresh["best_architecture"]
        assert cont["brackets"] == fresh["brackets"]
        # Continuation pays only the budget deltas.
        assert cont["epochs_incremental"] < cont["epochs_fresh"]
        assert fresh["epochs_fresh"] == cont["epochs_fresh"]


# ---------------------------------------------------------------------------
# Checkpoint / interrupt / resume
# ---------------------------------------------------------------------------

class TestCheckpointResume:
    @pytest.mark.parametrize("stop_after", [1, 7, 23])
    def test_kill_and_resume_is_exact(self, evaluator, tmp_path,
                                      stop_after):
        hb = Hyperband(**HB)
        full = run_multifidelity_campaign(hb, evaluator, seed=11)

        ckpt = tmp_path / "mf.json"
        partial = run_multifidelity_campaign(
            hb, evaluator, seed=11, checkpoint=ckpt,
            stop_after_evaluations=stop_after)
        assert partial["completed"] is False
        assert partial["n_evaluations"] == stop_after

        state = load_checkpoint(ckpt)
        assert state["format"] == MULTIFIDELITY_FORMAT
        resumed = resume_multifidelity_campaign(ckpt, evaluator,
                                                checkpoint=ckpt)
        assert resumed["completed"] is True
        assert resumed["best_reward"] == full["best_reward"]
        assert resumed["best_architecture"] == full["best_architecture"]
        assert resumed["n_evaluations"] == full["n_evaluations"]
        assert resumed["epochs_incremental"] == full["epochs_incremental"]
        assert resumed["brackets"] == full["brackets"]

    def test_chained_interrupts_equal_one_run(self, evaluator, tmp_path):
        hb = Hyperband(**HB)
        full = run_multifidelity_campaign(hb, evaluator, seed=4)
        ckpt = tmp_path / "mf.json"
        run_multifidelity_campaign(hb, evaluator, seed=4, checkpoint=ckpt,
                                   stop_after_evaluations=9)
        resume_multifidelity_campaign(ckpt, evaluator, checkpoint=ckpt,
                                      stop_after_evaluations=15)
        final = resume_multifidelity_campaign(ckpt, evaluator,
                                              checkpoint=ckpt)
        assert final["best_reward"] == full["best_reward"]
        assert final["n_evaluations"] == full["n_evaluations"]
        assert final["brackets"] == full["brackets"]

    def test_resume_on_pool_matches(self, evaluator, tmp_path):
        hb = Hyperband(min_epochs=1, max_epochs=20, eta=4)
        full = run_multifidelity_campaign(hb, evaluator, seed=6)
        ckpt = tmp_path / "mf.json"
        run_multifidelity_campaign(hb, evaluator, seed=6, checkpoint=ckpt,
                                   stop_after_evaluations=5)
        resumed = resume_multifidelity_campaign(ckpt, evaluator,
                                                workers=2)
        assert resumed["best_reward"] == full["best_reward"]
        assert resumed["brackets"] == full["brackets"]

    def test_scheduler_mismatch_refused(self, evaluator, tmp_path):
        ckpt = tmp_path / "mf.json"
        run_multifidelity_campaign(Hyperband(**HB), evaluator, seed=1,
                                   checkpoint=ckpt,
                                   stop_after_evaluations=3)
        for wrong in (Hyperband(min_epochs=2, max_epochs=20, eta=4,
                                candidate_multiplier=2),
                      Hyperband(min_epochs=1, max_epochs=20, eta=3,
                                candidate_multiplier=2),
                      SuccessiveHalving(n_candidates=8, min_epochs=1,
                                        max_epochs=20, eta=4)):
            with pytest.raises(ValueError, match="different experiment"):
                resume_multifidelity_campaign(ckpt, evaluator,
                                              scheduler=wrong)

    def test_seed_mismatch_refused(self, evaluator, tmp_path):
        ckpt = tmp_path / "mf.json"
        run_multifidelity_campaign(Hyperband(**HB), evaluator, seed=1,
                                   checkpoint=ckpt,
                                   stop_after_evaluations=3)
        state = load_checkpoint(ckpt)
        state["seed"] = 2
        with pytest.raises(ValueError, match="different experiment"):
            run_multifidelity_campaign(Hyperband(**HB), evaluator, seed=1,
                                       resume_state=state)

    def test_evaluator_identity_mismatch_refused(self, small_space, model,
                                                 tmp_path):
        """A checkpoint written against one benchmark archive refuses an
        evaluator bound to different external state."""
        from repro.nas import BenchmarkEvaluator, build_archive
        path = build_archive(small_space, model, tmp_path / "a.npz")
        ev = BenchmarkEvaluator(path)
        ckpt = tmp_path / "mf.json"
        run_multifidelity_campaign(Hyperband(**HB), ev, seed=0,
                                   checkpoint=ckpt,
                                   stop_after_evaluations=3)
        other_model = ArchitecturePerformanceModel(small_space, seed=9)
        other = BenchmarkEvaluator(
            build_archive(small_space, other_model, tmp_path / "b.npz"))
        with pytest.raises(ValueError, match="different experiment"):
            resume_multifidelity_campaign(ckpt, other)

    def test_non_multifidelity_checkpoint_refused(self, evaluator,
                                                  tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "repro-campaign-checkpoint"}')
        with pytest.raises(ValueError, match="multi-fidelity"):
            resume_multifidelity_campaign(path, evaluator)


# ---------------------------------------------------------------------------
# Joint space + genetic searcher over architecture x hyperparameters
# ---------------------------------------------------------------------------

class TestJointSearch:
    def test_joint_space_split_round_trips(self, small_space):
        space = JointArchitectureSpace(small_space)
        rng = np.random.default_rng(0)
        for _ in range(32):
            enc = space.random_architecture(rng)
            arch, hp = space.split(enc)
            assert small_space.validate(arch) == arch
            assert hp.learning_rate in space.grid.learning_rates
            assert hp.window in space.grid.windows
            assert hp.pod_rank in space.grid.pod_ranks
            assert space.from_index(space.index_of(enc)) == enc

    def test_joint_evaluator_optimum_at_paper_protocol(self, small_space,
                                                       model):
        space = JointArchitectureSpace(small_space)
        ev = JointSurrogateEvaluator(space, model)
        arch = small_space.from_index(77)
        grid = space.grid
        best = arch + (grid.learning_rates.index(1e-3),
                       grid.windows.index(8), grid.pod_ranks.index(2))
        # POD rank optimum is 6; rank 2 sits off it, lr/window on it.
        off = ev.mean_quality(best, 20)
        on = ev.mean_quality(
            arch + (grid.learning_rates.index(1e-3),
                    grid.windows.index(8), grid.pod_ranks.index(6)), 20)
        assert on > off

    def test_ga_improves_over_its_first_generation(self, small_space,
                                                   model):
        space = JointArchitectureSpace(small_space)
        ev = JointSurrogateEvaluator(space, model)
        ga = GeneticSearch(space, rng=0, population_size=10,
                           tournament_size=3)
        rng = np.random.default_rng(0)
        firstgen = []
        for i in range(120):
            enc = ga.ask()
            reward = ev.evaluate(enc, np.random.default_rng(i)).reward
            ga.tell(enc, reward)
            if i < 10:
                firstgen.append(reward)
        assert ga.generation >= 10
        assert ga.best_reward > max(firstgen)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            HyperparameterGrid(learning_rates=())
        with pytest.raises(ValueError):
            HyperparameterGrid(windows=(4, 4))
        with pytest.raises(ValueError):
            HyperparameterGrid(pod_ranks=(0,))


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

class TestObservability:
    def test_campaign_counters(self, evaluator):
        from repro import obs
        obs.enable()
        hb = Hyperband(**HB)
        report = run_multifidelity_campaign(hb, evaluator, seed=0)
        counters = {k: c.value
                    for k, c in obs.get_registry().counters.items()}
        assert counters["multifidelity/evaluations"] \
            == report["n_evaluations"]
        assert counters["multifidelity/epochs_trained"] \
            == report["epochs_fresh"]
        assert counters["multifidelity/brackets_completed"] == 3
        assert counters["multifidelity/rungs_completed"] \
            == sum(len(b["rungs"]) for b in report["brackets"])
        assert counters["multifidelity/promotions"] > 0

    def test_ga_counters(self, small_space, model):
        from repro import obs
        obs.enable()
        space = JointArchitectureSpace(small_space)
        ev = JointSurrogateEvaluator(space, model)
        ga = GeneticSearch(space, rng=0, population_size=6)
        for i in range(40):
            enc = ga.ask()
            ga.tell(enc, ev.evaluate(enc, np.random.default_rng(i)).reward)
        counters = {k: c.value
                    for k, c in obs.get_registry().counters.items()}
        assert counters["nas/ga/generations"] == ga.generation
        assert counters.get("nas/ga/crossovers", 0) \
            + counters.get("nas/ga/mutations", 0) > 0
