"""Batch-invariant inference kernels (repro.nn.detmath).

The serving determinism contract rests on one property: inside
``batch_invariant()``, the bits of each example's output do not depend
on which batch it was computed in. Outside the context everything must
be plain ``@`` — training numerics untouched.
"""

import threading

import numpy as np
import pytest

from repro.baselines import build_manual_lstm
from repro.nn import (batch_invariant, batch_invariant_enabled,
                      recurrent_matmul)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestRecurrentMatmul:
    def test_disabled_is_plain_matmul(self, rng):
        a = rng.standard_normal((5, 8))
        w = rng.standard_normal((8, 12))
        np.testing.assert_array_equal(recurrent_matmul(a, w), a @ w)
        assert not batch_invariant_enabled()

    def test_enabled_rows_match_batch_of_one(self, rng):
        for batch in (1, 2, 3, 5, 8, 16):
            a = rng.standard_normal((batch, 16))
            w = rng.standard_normal((16, 24))
            singles = np.vstack([a[i:i + 1] @ w for i in range(batch)])
            with batch_invariant():
                stacked = recurrent_matmul(a, w)
            np.testing.assert_array_equal(stacked, singles)

    def test_enabled_close_to_plain(self, rng):
        a = rng.standard_normal((6, 16))
        w = rng.standard_normal((16, 8))
        with batch_invariant():
            out = recurrent_matmul(a, w)
        np.testing.assert_allclose(out, a @ w, atol=1e-12)


class TestContext:
    def test_nesting_restores(self):
        assert not batch_invariant_enabled()
        with batch_invariant():
            assert batch_invariant_enabled()
            with batch_invariant():
                assert batch_invariant_enabled()
            assert batch_invariant_enabled()
        assert not batch_invariant_enabled()

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with batch_invariant():
                raise RuntimeError("boom")
        assert not batch_invariant_enabled()

    def test_thread_local(self):
        observed = {}

        def probe():
            observed["enabled"] = batch_invariant_enabled()

        with batch_invariant():
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert observed["enabled"] is False


class TestNetworkInvariance:
    """End-to-end: a recurrent network's per-example predictions are
    batch-size independent under the contract."""

    @pytest.fixture(scope="class")
    def net(self):
        return build_manual_lstm(12, 2, input_dim=4, output_dim=4, rng=0)

    def test_rows_independent_of_batch_size(self, net, rng):
        x = rng.standard_normal((16, 6, 4))
        singles = [net.predict(x[i:i + 1])[0] for i in range(16)]
        for batch in (1, 3, 8, 16):
            with batch_invariant():
                out = net.predict(x[:batch])
            for i in range(batch):
                assert np.array_equal(out[i], singles[i])

    def test_disabled_predictions_unchanged(self, net, rng):
        x = rng.standard_normal((8, 6, 4))
        before = net.predict(x)
        with batch_invariant():
            pass  # entering and leaving the context changes nothing
        np.testing.assert_array_equal(net.predict(x), before)
