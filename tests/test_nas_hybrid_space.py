"""Hybrid-cell search space (GRU/RNN operations) — the future-work
extension."""

import numpy as np
import pytest

from repro.nas.space import (
    Operation,
    StackedLSTMSpace,
    build_network,
    describe_architecture,
    hybrid_operations,
)


@pytest.fixture(scope="module")
def hybrid_space():
    return StackedLSTMSpace(n_layers=3, input_dim=3, output_dim=3,
                            operations=hybrid_operations())


class TestHybridOperations:
    def test_catalog_contains_all_cell_kinds(self):
        kinds = {op.kind for op in hybrid_operations()}
        assert kinds == {"identity", "lstm", "gru", "rnn"}

    def test_gate_multipliers(self):
        assert Operation("lstm", 8).gate_multiplier == 4
        assert Operation("gru", 8).gate_multiplier == 3
        assert Operation("rnn", 8).gate_multiplier == 1

    def test_str(self):
        assert str(Operation("gru", 32)) == "GRU(32)"
        assert str(Operation("rnn", 16)) == "RNN(16)"

    def test_invalid_kind_still_rejected(self):
        with pytest.raises(ValueError):
            Operation("transformer", 8)

    def test_gru_needs_units(self):
        with pytest.raises(ValueError):
            Operation("gru")


class TestHybridSpace:
    def test_builder_param_consistency(self, hybrid_space, rng):
        for _ in range(25):
            arch = hybrid_space.random_architecture(rng)
            net = build_network(hybrid_space, arch, rng=0)
            assert net.n_parameters == hybrid_space.count_parameters(arch)

    def test_network_runs(self, hybrid_space, rng):
        arch = hybrid_space.random_architecture(rng)
        net = build_network(hybrid_space, arch, rng=0)
        y = net.forward(rng.standard_normal((2, 6, 3)))
        assert y.shape == (2, 6, 3)
        assert np.isfinite(y).all()

    def test_mixed_cells_in_one_network(self, hybrid_space):
        # ops: 1=lstm32, 4=gru32, 7=rnn32
        arch = (1, 4, 7) + (0,) * hybrid_space.n_skip_nodes
        net = build_network(hybrid_space, arch, rng=0)
        names = set(net.node_names)
        assert "lstm_1" in names and "gru_2" in names and "rnn_3" in names

    def test_param_ordering_by_cell_type(self, hybrid_space):
        """Same width: LSTM > GRU > RNN in parameters."""
        base = (0,) * hybrid_space.n_skip_nodes
        lstm = hybrid_space.count_parameters((1, 0, 0) + base)
        gru = hybrid_space.count_parameters((4, 0, 0) + base)
        rnn = hybrid_space.count_parameters((7, 0, 0) + base)
        assert lstm > gru > rnn

    def test_describe_shows_cell_kinds(self, hybrid_space):
        arch = (1, 4, 7) + (0,) * hybrid_space.n_skip_nodes
        text = describe_architecture(hybrid_space, arch)
        assert "GRU(32)" in text and "RNN(32)" in text

    def test_search_over_hybrid_space(self, hybrid_space):
        """AE runs end to end over the extended space."""
        from repro.nas import AgingEvolution, ArchitecturePerformanceModel
        model = ArchitecturePerformanceModel(hybrid_space, seed=0)
        ae = AgingEvolution(hybrid_space, rng=0, population_size=20,
                            sample_size=5)
        eval_rng = np.random.default_rng(1)
        for _ in range(150):
            arch = ae.ask()
            ae.tell(arch, model.observed_quality(arch, eval_rng))
        assert ae.best_reward > 0.9
