"""Generate the legacy-artifact fixtures checked in under tests/data/.

These files were produced by the *pre-fused-kernel* implementation of the
recurrent layers (PR 5 state of the tree, gate-stacked ``Wx``/``Wh``/``b``
parameters, strictly serial per-step math) and are intentionally committed
as binaries: the compatibility tests in tests/test_serve_engine.py,
tests/test_serialization.py and tests/test_nas_checkpoint.py assert that
every later rewrite of the layer internals still loads them and
reproduces their recorded outputs bit for bit.

Do NOT regenerate these fixtures casually — rewriting them with a newer
tree would silently destroy the backward-compatibility evidence. If the
on-disk format ever changes version, add *new* fixtures next to the old
ones instead.

Run from the repo root:  PYTHONPATH=src python tests/data/make_legacy_fixtures.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

HERE = Path(__file__).resolve().parent


def make_emulator_fixtures() -> None:
    from repro.data import LatLonGrid
    from repro.data.sst import SyntheticSST
    from repro.forecast import PODLSTMEmulator
    from repro.nn import Trainer
    from repro.serve import save_bundle

    generator = SyntheticSST(grid=LatLonGrid(degrees=12.0), seed=123)
    snapshots = generator.snapshots(np.arange(60))
    emulator = PODLSTMEmulator(n_modes=3, window=4,
                               trainer=Trainer(epochs=2, batch_size=16))
    emulator.fit(snapshots, rng=0)
    save_bundle(emulator, HERE / "legacy_emulator_bundle.npz",
                metadata={"fixture": "pre-fused-kernels"})
    windows = emulator.pipeline.windows_from_snapshots(snapshots).inputs
    np.save(HERE / "legacy_emulator_windows.npy", windows)
    np.save(HERE / "legacy_emulator_forecast.npy",
            emulator.predict_windows(windows))


def make_network_fixtures() -> None:
    from repro.nn import DenseLayer, LSTMLayer, Network
    from repro.nn.layers import AddLayer, GRULayer, SimpleRNNLayer
    from repro.nn.serialization import save_network

    net = Network(input_dim=5, rng=0)
    net.add_node("l1", LSTMLayer(6), ["input"])
    net.add_node("g1", GRULayer(6), ["l1"])
    net.add_node("proj", DenseLayer(6), ["l1"])
    net.add_node("merge", AddLayer("relu"), ["g1", "proj"])
    net.add_node("r1", SimpleRNNLayer(4), ["merge"])
    net.add_node("out", DenseLayer(5), ["r1"])
    net.set_output("out")
    save_network(net, HERE / "legacy_network.npz")
    rng = np.random.default_rng(7)
    x = rng.standard_normal((3, 8, 5))
    np.save(HERE / "legacy_network_input.npy", x)
    np.save(HERE / "legacy_network_forward.npy", net.forward(x))


def make_campaign_fixtures() -> None:
    from repro.hpc import ThetaPartition, resume_search, run_search
    from repro.nas import (AgingEvolution, ArchitecturePerformanceModel,
                           CheckpointPolicy, SurrogateEvaluator)
    from repro.nas.space.ops import Operation
    from repro.nas.space.search_space import StackedLSTMSpace

    def space():
        ops = (Operation("identity"), Operation("lstm", 4),
               Operation("lstm", 8), Operation("lstm", 12))
        return StackedLSTMSpace(n_layers=3, input_dim=3, output_dim=3,
                                operations=ops, max_skip_depth=3)

    def evaluator(sp):
        return SurrogateEvaluator(sp, ArchitecturePerformanceModel(sp, seed=0))

    ckpt = HERE / "legacy_campaign_v2.json"
    sp = space()
    run_search(AgingEvolution(sp, rng=7, population_size=8, sample_size=3),
               evaluator(sp), ThetaPartition(n_nodes=4, wall_seconds=1200.0),
               rng=123, walltime=400.0, checkpoint=CheckpointPolicy(ckpt))
    # Record the full trajectory the resumed campaign must reproduce.
    sp2 = space()
    _, tracker = resume_search(ckpt, sp2, evaluator(sp2))
    records = [[list(r.architecture), r.reward, r.start_time, r.end_time,
                r.node] for r in tracker.records]
    (HERE / "legacy_campaign_expected.json").write_text(
        json.dumps({"records": records}, indent=1), encoding="utf-8")
    # resume_search consumed the checkpoint state in memory only; the
    # on-disk fixture still holds the interrupted campaign. Re-interrupt
    # would overwrite it, so regenerate it last to be safe.
    sp3 = space()
    run_search(AgingEvolution(sp3, rng=7, population_size=8, sample_size=3),
               evaluator(sp3), ThetaPartition(n_nodes=4, wall_seconds=1200.0),
               rng=123, walltime=400.0, checkpoint=CheckpointPolicy(ckpt))


if __name__ == "__main__":
    make_emulator_fixtures()
    make_network_fixtures()
    make_campaign_fixtures()
    print("fixtures written to", HERE)
