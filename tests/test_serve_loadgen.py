"""Closed-loop load generator and SLO report (repro.serve.loadgen)."""

import json

import numpy as np
import pytest

from repro.serve import (SLO_REPORT_FORMAT, SLO_REPORT_VERSION,
                         ForecastEngine, nearest_rank_percentile,
                         run_loadgen, validate_slo_report)


@pytest.fixture()
def windows(tiny_emulator, generator):
    snaps = generator.snapshots(np.arange(60))
    return tiny_emulator.pipeline.windows_from_snapshots(snaps).inputs


class TestNearestRankPercentile:
    def test_known_values(self):
        sample = [10.0, 20.0, 30.0, 40.0]
        assert nearest_rank_percentile(sample, 50.0) == 20.0
        assert nearest_rank_percentile(sample, 75.0) == 30.0
        assert nearest_rank_percentile(sample, 95.0) == 40.0
        assert nearest_rank_percentile(sample, 100.0) == 40.0

    def test_single_element(self):
        assert nearest_rank_percentile([7.0], 99.0) == 7.0

    @pytest.mark.parametrize("q", [0.0, -1.0, 100.5])
    def test_out_of_range(self, q):
        with pytest.raises(ValueError, match="percentile"):
            nearest_rank_percentile([1.0], q)

    def test_empty_sample(self):
        with pytest.raises(ValueError, match="empty"):
            nearest_rank_percentile([], 50.0)


class TestRunLoadgen:
    def test_report_well_formed(self, tiny_emulator, windows, tmp_path):
        with ForecastEngine(tiny_emulator, cache_entries=0) as engine:
            report = run_loadgen(engine, windows, clients=3,
                                 requests_per_client=8)
        assert report.clients == 3
        assert report.n_requests == 24
        assert report.n_errors == 0
        assert report.throughput_rps > 0
        lat = report.latency_ms
        assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        # The exported JSON round-trips through the schema validator.
        path = tmp_path / "slo.json"
        report.dump(path)
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        validate_slo_report(data)
        assert data["format"] == SLO_REPORT_FORMAT
        assert data["version"] == SLO_REPORT_VERSION

    def test_small_pool_exercises_cache(self, tiny_emulator, windows):
        with ForecastEngine(tiny_emulator) as engine:
            report = run_loadgen(engine, windows[:2], clients=2,
                                 requests_per_client=10)
        assert report.engine["cache"]["hits"] > 0

    def test_table_mentions_key_numbers(self, tiny_emulator, windows):
        with ForecastEngine(tiny_emulator, cache_entries=0) as engine:
            report = run_loadgen(engine, windows, clients=2,
                                 requests_per_client=4)
        text = report.table()
        assert "throughput" in text
        assert "p95" in text
        assert "cache" in text

    def test_engine_must_be_running(self, tiny_emulator, windows):
        engine = ForecastEngine(tiny_emulator)
        with pytest.raises(RuntimeError, match="not running"):
            run_loadgen(engine, windows)

    def test_argument_validation(self, tiny_emulator, windows):
        with ForecastEngine(tiny_emulator) as engine:
            with pytest.raises(ValueError, match="clients"):
                run_loadgen(engine, windows, clients=0)
            with pytest.raises(ValueError, match="requests_per_client"):
                run_loadgen(engine, windows, requests_per_client=0)
            with pytest.raises(ValueError, match="windows"):
                run_loadgen(engine, np.zeros((0, 4, 3)))
            with pytest.raises(ValueError, match="windows"):
                run_loadgen(engine, np.zeros((4, 3)))


class TestValidateSLOReport:
    def _valid(self):
        return {"format": SLO_REPORT_FORMAT, "version": SLO_REPORT_VERSION,
                "clients": 2, "n_requests": 4, "n_errors": 0,
                "duration_s": 0.1, "throughput_rps": 40.0,
                "latency_ms": {"mean": 1.0, "p50": 1.0, "p95": 2.0,
                               "p99": 3.0, "max": 3.0},
                "engine": {}}

    def test_valid_passes(self):
        validate_slo_report(self._valid())

    def test_wrong_format(self):
        data = self._valid()
        data["format"] = "nope"
        with pytest.raises(ValueError, match="not an SLO report"):
            validate_slo_report(data)

    def test_wrong_version(self):
        data = self._valid()
        data["version"] = SLO_REPORT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            validate_slo_report(data)

    def test_missing_key(self):
        data = self._valid()
        del data["throughput_rps"]
        with pytest.raises(ValueError, match="missing key"):
            validate_slo_report(data)

    def test_negative_latency(self):
        data = self._valid()
        data["latency_ms"]["p95"] = -1.0
        with pytest.raises(ValueError, match="finite and"):
            validate_slo_report(data)

    def test_non_monotone_percentiles(self):
        data = self._valid()
        data["latency_ms"]["p95"] = 5.0  # above p99
        with pytest.raises(ValueError, match="monotone"):
            validate_slo_report(data)

    def test_not_a_dict(self):
        with pytest.raises(ValueError, match="dict"):
            validate_slo_report([1, 2, 3])


class TestRouterLoadgenValidation:
    """Input validation of run_router_loadgen (the socket harness itself
    is exercised end-to-end by tests/test_cli.py and the CI router-smoke
    job)."""

    def test_rejects_bad_client_counts(self):
        from repro.serve import run_router_loadgen
        windows = np.zeros((4, 4, 3))
        with pytest.raises(ValueError, match="clients"):
            run_router_loadgen(("127.0.0.1", 1), windows, clients=0)
        with pytest.raises(ValueError, match="requests_per_client"):
            run_router_loadgen(("127.0.0.1", 1), windows,
                               requests_per_client=0)

    def test_rejects_bad_window_pool(self):
        from repro.serve import run_router_loadgen
        with pytest.raises(ValueError, match="windows"):
            run_router_loadgen(("127.0.0.1", 1), np.zeros((4, 3)))
        with pytest.raises(ValueError, match="windows"):
            run_router_loadgen(("127.0.0.1", 1), np.zeros((0, 4, 3)))
