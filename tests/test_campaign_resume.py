"""Differential tests: interrupt-at-k + resume == uninterrupted.

The contract of docs/CHECKPOINTING.md — a campaign cut short by a
walltime budget and resumed from its checkpoint must produce *exactly*
(``==``, not approximately) the evaluation trajectory, best architecture
and final search state of the uninterrupted run — for every algorithm
and at multiple interrupt points.
"""

import json

import numpy as np
import pytest

from repro.hpc import ThetaPartition, resume_search, run_search
from repro.nas import (
    AgingEvolution,
    ArchitecturePerformanceModel,
    CheckpointPolicy,
    DistributedRL,
    GeneticSearch,
    RandomSearch,
    SurrogateEvaluator,
)
from repro.nas.checkpoint import CAMPAIGN_FORMAT, load_checkpoint

WALL = 1200.0
RL_WALL = 1500.0


@pytest.fixture()
def evaluator(small_space):
    return SurrogateEvaluator(
        small_space, ArchitecturePerformanceModel(small_space, seed=0))


def make_algorithm(kind, space):
    if kind == "ae":
        return AgingEvolution(space, rng=7, population_size=8,
                              sample_size=3)
    if kind == "rs":
        return RandomSearch(space, rng=7)
    if kind == "ga":
        return GeneticSearch(space, rng=7, population_size=6,
                             tournament_size=3, elite=2)
    return DistributedRL(space, rng=7, n_agents=2, workers_per_agent=5)


def make_partition(kind):
    if kind == "rl":
        return ThetaPartition(n_nodes=12, wall_seconds=RL_WALL)
    return ThetaPartition(n_nodes=4, wall_seconds=WALL)


def trajectory(tracker):
    """Everything the paper reports, exact."""
    return [(r.architecture, r.reward, r.start_time, r.end_time, r.node)
            for r in tracker.records]


def algorithm_fingerprint(algorithm):
    fp = {"n_asked": algorithm.n_asked, "n_told": algorithm.n_told,
          "best_reward": algorithm.best_reward,
          "best_architecture": algorithm.best_architecture}
    if isinstance(algorithm, AgingEvolution):
        fp["population"] = list(algorithm.population)
    if isinstance(algorithm, GeneticSearch):
        fp["generation"] = algorithm.generation
        fp["n_immigrants"] = algorithm.n_immigrants
        fp["population"] = list(algorithm.population)
        fp["results"] = list(algorithm._results)
        fp["pending"] = list(algorithm._pending)
    if isinstance(algorithm, DistributedRL):
        fp["round_index"] = algorithm.round_index
        fp["logits"] = [[logit.tolist() for logit in agent.logits]
                        for agent in algorithm.agents]
        fp["baselines"] = [agent.value_baseline
                           for agent in algorithm.agents]
    return fp


@pytest.mark.parametrize("kind,cut", [
    ("ae", 300.0), ("ae", 700.0),
    ("rs", 250.0), ("rs", 800.0),
    ("ga", 300.0), ("ga", 700.0),
    ("rl", 400.0), ("rl", 900.0),
])
def test_interrupt_and_resume_is_bitwise_equal(kind, cut, small_space,
                                               evaluator, tmp_path):
    part = make_partition(kind)
    full_alg = make_algorithm(kind, small_space)
    full = run_search(full_alg, evaluator, part, rng=123)
    assert full.n_evaluations > 5  # the comparison must be non-trivial

    ckpt = tmp_path / "campaign.json"
    cut_alg = make_algorithm(kind, small_space)
    partial = run_search(cut_alg, evaluator, part, rng=123, walltime=cut,
                         checkpoint=CheckpointPolicy(ckpt))
    assert partial.n_evaluations < full.n_evaluations
    resumed_alg, resumed = resume_search(ckpt, small_space, evaluator)

    assert trajectory(resumed) == trajectory(full)
    assert algorithm_fingerprint(resumed_alg) \
        == algorithm_fingerprint(full_alg)
    assert resumed.node_utilization() == full.node_utilization()
    assert resumed.n_failures == full.n_failures


def test_ga_interrupt_mid_generation(small_space, evaluator, tmp_path):
    """Cutting the GA inside a generation — partial results accumulated,
    offspring still queued — restores the exact population, pending
    offspring, and RNG position, so the resumed trajectory is the
    uninterrupted one."""
    part = make_partition("ga")
    full_alg = make_algorithm("ga", small_space)
    full = run_search(full_alg, evaluator, part, rng=123)
    assert full_alg.generation >= 2  # the GA actually evolved

    ckpt = tmp_path / "campaign.json"
    cut_alg = make_algorithm("ga", small_space)
    run_search(cut_alg, evaluator, part, rng=123, walltime=500.0,
               checkpoint=CheckpointPolicy(ckpt))
    # The cut must land strictly inside a generation for the test to
    # mean anything: some results told, the generation not yet bred.
    assert 0 < len(cut_alg._results) < cut_alg.population_size

    resumed_alg, resumed = resume_search(ckpt, small_space, evaluator)
    assert trajectory(resumed) == trajectory(full)
    assert algorithm_fingerprint(resumed_alg) \
        == algorithm_fingerprint(full_alg)


def test_ga_config_mismatch_refused(small_space):
    """A GA checkpoint only restores into a searcher with the identical
    genetic configuration — anything else is a different experiment."""
    from repro.nas import search_state
    donor = make_algorithm("ga", small_space)
    for _ in range(4):
        donor.tell(donor.ask(), 0.5)
    state = search_state(donor)
    other = GeneticSearch(small_space, rng=7, population_size=9,
                          tournament_size=3, elite=2)
    with pytest.raises(ValueError,
                       match="different experiment"):
        other.load_state_dict(state)


def test_three_allocations_equal_one(small_space, evaluator, tmp_path):
    """A campaign split across three walltime budgets chains exactly."""
    part = make_partition("ae")
    full_alg = make_algorithm("ae", small_space)
    full = run_search(full_alg, evaluator, part, rng=123)

    ckpt = tmp_path / "campaign.json"
    alg = make_algorithm("ae", small_space)
    run_search(alg, evaluator, part, rng=123, walltime=400.0,
               checkpoint=CheckpointPolicy(ckpt))
    resume_search(ckpt, small_space, evaluator, walltime=400.0,
                  checkpoint=CheckpointPolicy(ckpt))
    final_alg, final = resume_search(ckpt, small_space, evaluator)
    assert trajectory(final) == trajectory(full)
    assert algorithm_fingerprint(final_alg) \
        == algorithm_fingerprint(full_alg)


def test_backend_mode_resume_with_periodic_checkpoints(small_space,
                                                       evaluator, tmp_path):
    """Backend campaigns (order-stable task streams, in-flight work)
    restore exactly; the periodic writes must not perturb the run."""
    part = make_partition("ae")
    full_alg = make_algorithm("ae", small_space)
    full = run_search(full_alg, evaluator, part, rng=123, workers=0)

    ckpt = tmp_path / "campaign.json"
    alg = make_algorithm("ae", small_space)
    run_search(alg, evaluator, part, rng=123, workers=0, walltime=500.0,
               checkpoint=CheckpointPolicy(ckpt, every_seconds=90.0))
    state = load_checkpoint(ckpt)
    assert state["format"] == CAMPAIGN_FORMAT
    assert state["uses_backend"] is True
    # Resume defaults to the serial backend — bitwise-equal to any pool.
    resumed_alg, resumed = resume_search(ckpt, small_space, evaluator)
    assert trajectory(resumed) == trajectory(full)
    assert algorithm_fingerprint(resumed_alg) \
        == algorithm_fingerprint(full_alg)


def test_pool_checkpoint_resumes_on_serial_backend(small_space, evaluator,
                                                   tmp_path):
    """A 2-process-pool campaign interrupted mid-flight (speculative
    in-flight tasks pending) resumes to the serial-backend trajectory."""
    part = make_partition("rs")
    full_alg = make_algorithm("rs", small_space)
    full = run_search(full_alg, evaluator, part, rng=123, workers=0)

    ckpt = tmp_path / "campaign.json"
    alg = make_algorithm("rs", small_space)
    run_search(alg, evaluator, part, rng=123, workers=2, walltime=450.0,
               checkpoint=CheckpointPolicy(ckpt))
    resumed_alg, resumed = resume_search(ckpt, small_space, evaluator)
    assert trajectory(resumed) == trajectory(full)
    assert algorithm_fingerprint(resumed_alg) \
        == algorithm_fingerprint(full_alg)


def test_periodic_checkpoint_file_always_loadable(small_space, evaluator,
                                                  tmp_path, monkeypatch):
    """Every periodic write is atomic: peeking at the file between
    writes always parses, and a crash mid-write leaves the previous
    checkpoint behind."""
    import repro.nas.checkpoint as ckpt_mod

    ckpt = tmp_path / "campaign.json"
    seen = []
    real_replace = ckpt_mod.os.replace

    def spying_replace(src, dst):
        real_replace(src, dst)
        seen.append(json.loads(ckpt.read_text())["now"])

    monkeypatch.setattr(ckpt_mod.os, "replace", spying_replace)
    part = make_partition("ae")
    run_search(make_algorithm("ae", small_space), evaluator, part,
               rng=123, checkpoint=CheckpointPolicy(ckpt,
                                                    every_seconds=150.0))
    assert len(seen) >= 3  # periodic marks plus the final write
    assert seen == sorted(seen)

    # Now crash the *next* write: the campaign-complete file survives.
    before = ckpt.read_text()
    monkeypatch.setattr(
        ckpt_mod.os, "replace",
        lambda src, dst: (_ for _ in ()).throw(OSError("killed")))
    with pytest.raises(OSError):
        run_search(make_algorithm("ae", small_space), evaluator, part,
                   rng=123, walltime=200.0,
                   checkpoint=CheckpointPolicy(ckpt))
    assert ckpt.read_text() == before
    monkeypatch.setattr(ckpt_mod.os, "replace", real_replace)
    resume_search(ckpt, small_space, evaluator)  # still resumable


def test_rl_checkpoint_at_boundary_recomputes_partial_round(small_space,
                                                            evaluator,
                                                            tmp_path):
    """Cutting an RL campaign mid-round resumes from the last barrier;
    the recomputed partial round matches the uninterrupted one."""
    part = make_partition("rl")
    full_alg = make_algorithm("rl", small_space)
    full = run_search(full_alg, evaluator, part, rng=99)

    ckpt = tmp_path / "campaign.json"
    alg = make_algorithm("rl", small_space)
    # 472s lands strictly inside a round (rounds take ~200s+).
    run_search(alg, evaluator, part, rng=99, walltime=472.0,
               checkpoint=CheckpointPolicy(ckpt))
    state = load_checkpoint(ckpt)
    assert state["now"] <= 472.0  # quiescent boundary, not the cut point
    resumed_alg, resumed = resume_search(ckpt, small_space, evaluator)
    assert trajectory(resumed) == trajectory(full)
    assert algorithm_fingerprint(resumed_alg) \
        == algorithm_fingerprint(full_alg)


class TestResumeValidation:
    def test_non_campaign_file_rejected(self, small_space, evaluator,
                                        tmp_path):
        from repro.nas import save_search
        path = tmp_path / "search_only.json"
        save_search(make_algorithm("ae", small_space), path)
        with pytest.raises(ValueError, match="not a campaign checkpoint"):
            resume_search(path, small_space, evaluator)

    def test_evaluation_mode_mismatch_rejected(self, small_space,
                                               evaluator, tmp_path):
        part = make_partition("ae")
        ckpt = tmp_path / "campaign.json"
        run_search(make_algorithm("ae", small_space), evaluator, part,
                   rng=1, walltime=300.0, checkpoint=CheckpointPolicy(ckpt))
        with pytest.raises(ValueError, match="backend"):
            resume_search(ckpt, small_space, evaluator, workers=0)

    def test_negative_walltime_rejected(self, small_space, evaluator):
        part = make_partition("ae")
        with pytest.raises(ValueError, match="walltime"):
            run_search(make_algorithm("ae", small_space), evaluator, part,
                       rng=1, walltime=-5.0)

    def test_bad_checkpoint_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="every_seconds"):
            CheckpointPolicy(tmp_path / "x.json", every_seconds=0.0)

    def test_leftover_tmp_file_is_harmless(self, small_space, evaluator,
                                           tmp_path):
        """A .tmp sibling from a crashed write never shadows the real
        checkpoint and is overwritten by the next save."""
        part = make_partition("ae")
        ckpt = tmp_path / "campaign.json"
        (tmp_path / "campaign.json.tmp").write_text("{ garbage")
        run_search(make_algorithm("ae", small_space), evaluator, part,
                   rng=1, walltime=300.0, checkpoint=CheckpointPolicy(ckpt))
        resume_search(ckpt, small_space, evaluator)
