"""Unit tests of the evaluation backends (repro.hpc.parallel).

The differential serial-equivalence suite lives in
tests/test_parallel_equivalence.py and fault injection in
tests/test_parallel_faults.py; here: protocol mechanics, the factory,
speculative-ask feeding, pool observability, and PacedEvaluator.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import obs
from repro.hpc import (
    ParallelEvaluator,
    SerialEvaluator,
    evaluation_backend,
)
from repro.hpc.parallel import TaskFeed
from repro.nas import (
    AgingEvolution,
    ArchitecturePerformanceModel,
    PacedEvaluator,
    RandomSearch,
    SurrogateEvaluator,
)
from repro.utils.rng import child_sequence, spawn_sequences


def _surrogate(space):
    return SurrogateEvaluator(space, ArchitecturePerformanceModel(space,
                                                                  seed=0))


def _tasks(space, n):
    rng = np.random.default_rng(0)
    return ([space.random_architecture(rng) for _ in range(n)],
            spawn_sequences(1, n))


class TestSerialEvaluator:
    def test_matches_direct_evaluation(self, small_space):
        evaluator = _surrogate(small_space)
        backend = SerialEvaluator(evaluator)
        archs, seeds = _tasks(small_space, 4)
        handles = [backend.submit(a, s) for a, s in zip(archs, seeds)]
        results = [backend.gather(h) for h in handles]
        expected = [_surrogate(small_space).evaluate(
            a, np.random.default_rng(np.random.SeedSequence(
                entropy=s.entropy, spawn_key=s.spawn_key)))
            for a, s in zip(archs, seeds)]
        assert [r.reward for r in results] == [e.reward for e in expected]
        assert [r.duration for r in results] == \
            [e.duration for e in expected]

    def test_gather_order_is_free(self, small_space):
        backend = SerialEvaluator(_surrogate(small_space))
        archs, seeds = _tasks(small_space, 3)
        handles = [backend.submit(a, s) for a, s in zip(archs, seeds)]
        out_of_order = {h: backend.gather(h) for h in reversed(handles)}
        fresh = SerialEvaluator(_surrogate(small_space))
        in_order = {h: fresh.gather(h) for h in
                    [fresh.submit(a, s) for a, s in zip(archs, seeds)]}
        assert {h: r.reward for h, r in out_of_order.items()} == \
            {h: r.reward for h, r in in_order.items()}


class TestParallelEvaluator:
    def test_out_of_order_gather(self, small_space):
        archs, seeds = _tasks(small_space, 6)
        with ParallelEvaluator(_surrogate(small_space),
                               n_workers=2) as backend:
            handles = [backend.submit(a, s) for a, s in zip(archs, seeds)]
            pooled = [backend.gather(h) for h in reversed(handles)]
        serial = SerialEvaluator(_surrogate(small_space))
        expected = [serial.gather(h) for h in reversed(
            [serial.submit(a, s) for a, s in zip(archs, seeds)])]
        assert [r.reward for r in pooled] == [e.reward for e in expected]

    def test_invalid_parameters(self, small_space):
        evaluator = _surrogate(small_space)
        with pytest.raises(ValueError, match="n_workers"):
            ParallelEvaluator(evaluator, n_workers=0)
        with pytest.raises(ValueError, match="task_timeout"):
            ParallelEvaluator(evaluator, n_workers=1, task_timeout=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            ParallelEvaluator(evaluator, n_workers=1, max_retries=-1)

    def test_pool_metrics_recorded(self, small_space):
        obs.enable()
        archs, seeds = _tasks(small_space, 4)
        with ParallelEvaluator(_surrogate(small_space),
                               n_workers=2) as backend:
            for h in [backend.submit(a, s) for a, s in zip(archs, seeds)]:
                backend.gather(h)
        counters = obs.get_registry().counters
        assert counters["parallel/tasks_dispatched"].value == 4
        assert counters["parallel/tasks_completed"].value == 4
        assert counters["parallel/pickle_bytes_out"].value > 0
        assert counters["parallel/pickle_bytes_in"].value > 0
        gauges = obs.get_registry().gauges
        assert 0.0 <= gauges["parallel/worker_utilization"].last <= 1.0

    def test_capacity_scales_with_workers(self, small_space):
        evaluator = _surrogate(small_space)
        with ParallelEvaluator(evaluator, n_workers=3) as backend:
            assert backend.capacity == 6
        assert SerialEvaluator(evaluator).capacity == 1


class TestEvaluationBackendFactory:
    def test_workers_mapping(self, small_space):
        evaluator = _surrogate(small_space)
        assert evaluation_backend(evaluator, None) is None
        serial = evaluation_backend(evaluator, 0)
        assert isinstance(serial, SerialEvaluator)
        pool = evaluation_backend(evaluator, 2)
        assert isinstance(pool, ParallelEvaluator)
        assert pool.n_workers == 2
        pool.close()


class TestTaskFeed:
    def test_speculative_algorithms_fill_the_pool(self, small_space):
        backend = SerialEvaluator(_surrogate(small_space))
        rs = RandomSearch(small_space, rng=0)
        assert rs.speculative_ask
        feed = TaskFeed(rs, backend, np.random.SeedSequence(3))
        assert feed.depth == backend.capacity

    def test_feedback_algorithms_run_at_depth_one(self, small_space):
        backend = SerialEvaluator(_surrogate(small_space))
        ae = AgingEvolution(small_space, rng=0, population_size=4,
                            sample_size=2)
        assert not ae.speculative_ask
        feed = TaskFeed(ae, backend, np.random.SeedSequence(3))
        assert feed.depth == 1

    def test_task_seeds_follow_child_sequence(self, small_space):
        backend = SerialEvaluator(_surrogate(small_space))
        root = np.random.SeedSequence(3)
        feed = TaskFeed(RandomSearch(small_space, rng=0), backend, root)
        seqs = [feed.next_sequence() for _ in range(3)]
        assert [s.spawn_key for s in seqs] == \
            [child_sequence(root, k).spawn_key for k in range(3)]


class TestPacedEvaluator:
    def test_results_are_bitwise_those_of_the_inner(self, small_space):
        inner = _surrogate(small_space)
        paced = PacedEvaluator(_surrogate(small_space), pace_seconds=0.0)
        arch = small_space.random_architecture(np.random.default_rng(0))
        a = inner.evaluate(arch, np.random.default_rng(1))
        b = paced.evaluate(arch, np.random.default_rng(1))
        assert (a.reward, a.duration) == (b.reward, b.duration)

    def test_pace_is_paid_in_wall_clock(self, small_space):
        paced = PacedEvaluator(_surrogate(small_space), pace_seconds=0.05)
        arch = small_space.random_architecture(np.random.default_rng(0))
        start = time.perf_counter()
        paced.evaluate(arch, np.random.default_rng(1))
        assert time.perf_counter() - start >= 0.05

    def test_negative_pace_rejected(self, small_space):
        with pytest.raises(ValueError, match="pace_seconds"):
            PacedEvaluator(_surrogate(small_space), pace_seconds=-0.1)
