import numpy as np
import pytest

from repro.nn.layers import (
    AddLayer,
    DenseLayer,
    IdentityLayer,
    LSTMLayer,
)
from repro.nn.layers.elementwise import ActivationLayer


class TestDenseLayer:
    def test_output_shape(self, rng):
        layer = DenseLayer(7)
        layer.build([3], rng=0)
        y = layer.forward([rng.standard_normal((2, 5, 3))])
        assert y.shape == (2, 5, 7)

    def test_timestep_independent(self, rng):
        """Dense is applied per timestep: permuting time permutes output."""
        layer = DenseLayer(4)
        layer.build([3], rng=0)
        x = rng.standard_normal((1, 6, 3))
        y = layer.forward([x])
        perm = rng.permutation(6)
        y_perm = layer.forward([x[:, perm]])
        np.testing.assert_allclose(y_perm, y[:, perm])

    def test_linear_by_default(self, rng):
        layer = DenseLayer(4)
        layer.build([3], rng=0)
        x = rng.standard_normal((2, 3, 3))
        y1 = layer.forward([x])
        y2 = layer.forward([2.0 * x])
        b = layer.params["b"]
        np.testing.assert_allclose(y2 - b, 2.0 * (y1 - b), atol=1e-12)

    def test_param_count(self):
        layer = DenseLayer(7)
        layer.build([3], rng=0)
        assert layer.n_parameters == 3 * 7 + 7

    def test_rejects_multiple_inputs(self):
        with pytest.raises(ValueError):
            DenseLayer(2).build([3, 3], rng=0)

    def test_backward_before_forward(self):
        layer = DenseLayer(2)
        layer.build([2], rng=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 2)))


class TestLSTMLayer:
    def test_output_shape(self, rng):
        layer = LSTMLayer(6)
        layer.build([4], rng=0)
        y = layer.forward([rng.standard_normal((3, 5, 4))])
        assert y.shape == (3, 5, 6)

    def test_output_bounded(self, rng):
        """h = o * tanh(c) lies strictly inside (-1, 1)."""
        layer = LSTMLayer(4)
        layer.build([2], rng=0)
        y = layer.forward([10.0 * rng.standard_normal((2, 20, 2))])
        assert np.abs(y).max() < 1.0

    def test_causality(self, rng):
        """Output at time t must not depend on inputs after t."""
        layer = LSTMLayer(5)
        layer.build([3], rng=0)
        x = rng.standard_normal((1, 8, 3))
        y = layer.forward([x])
        x2 = x.copy()
        x2[0, 5:] += 100.0  # perturb the future
        y2 = layer.forward([x2])
        np.testing.assert_allclose(y2[0, :5], y[0, :5], atol=1e-12)
        assert not np.allclose(y2[0, 5:], y[0, 5:])

    def test_state_propagates_forward(self, rng):
        """Early inputs influence later outputs (recurrence)."""
        layer = LSTMLayer(5)
        layer.build([3], rng=0)
        x = rng.standard_normal((1, 8, 3))
        y = layer.forward([x])
        x2 = x.copy()
        x2[0, 0] += 1.0
        y2 = layer.forward([x2])
        assert not np.allclose(y2[0, -1], y[0, -1])

    def test_keras_param_count(self):
        # 4 * ((input + units) * units + units)
        layer = LSTMLayer(80)
        layer.build([5], rng=0)
        assert layer.n_parameters == 4 * ((5 + 80) * 80 + 80)

    def test_forget_bias_init(self):
        layer = LSTMLayer(4)
        layer.build([2], rng=0)
        b = layer.params["b"]
        np.testing.assert_allclose(b[4:8], 1.0)   # forget gate
        np.testing.assert_allclose(b[:4], 0.0)    # input gate

    def test_batch_independence(self, rng):
        layer = LSTMLayer(4)
        layer.build([2], rng=0)
        x = rng.standard_normal((3, 6, 2))
        y_all = layer.forward([x])
        y_one = layer.forward([x[1:2]])
        np.testing.assert_allclose(y_all[1:2], y_one, atol=1e-12)


class TestAddLayer:
    def test_sum_with_relu(self, rng):
        layer = AddLayer("relu")
        layer.build([3, 3], rng=0)
        a = rng.standard_normal((2, 4, 3))
        b = rng.standard_normal((2, 4, 3))
        np.testing.assert_allclose(layer.forward([a, b]),
                                   np.maximum(a + b, 0.0))

    def test_identity_activation(self, rng):
        layer = AddLayer(None)
        layer.build([2, 2, 2], rng=0)
        parts = [rng.standard_normal((1, 3, 2)) for _ in range(3)]
        np.testing.assert_allclose(layer.forward(parts), sum(parts))

    def test_dim_mismatch_at_build(self):
        with pytest.raises(ValueError, match="share"):
            AddLayer().build([2, 3], rng=0)

    def test_input_count_mismatch_at_forward(self, rng):
        layer = AddLayer()
        layer.build([2, 2], rng=0)
        with pytest.raises(ValueError, match="built for 2"):
            layer.forward([rng.standard_normal((1, 2, 2))])

    def test_shape_mismatch_at_forward(self, rng):
        layer = AddLayer()
        layer.build([2, 2], rng=0)
        with pytest.raises(ValueError, match="match shapes"):
            layer.forward([rng.standard_normal((1, 2, 2)),
                           rng.standard_normal((1, 3, 2))])

    def test_backward_fanout(self, rng):
        layer = AddLayer(None)
        layer.build([2, 2], rng=0)
        a, b = rng.standard_normal((2, 1, 3, 2))
        layer.forward([a, b])
        grads = layer.backward(np.ones((1, 3, 2)))
        assert len(grads) == 2
        np.testing.assert_allclose(grads[0], grads[1])
        # Gradients must not alias each other.
        grads[0][...] = 7.0
        assert not np.allclose(grads[1], 7.0)

    def test_no_parameters(self):
        layer = AddLayer()
        layer.build([2, 2], rng=0)
        assert layer.n_parameters == 0


class TestIdentityAndActivationLayers:
    def test_identity_passthrough(self, rng):
        layer = IdentityLayer()
        layer.build([3], rng=0)
        x = rng.standard_normal((2, 4, 3))
        assert layer.forward([x]) is x
        g = rng.standard_normal((2, 4, 3))
        assert layer.backward(g)[0] is g

    def test_activation_layer(self, rng):
        layer = ActivationLayer("tanh")
        layer.build([2], rng=0)
        x = rng.standard_normal((1, 3, 2))
        np.testing.assert_allclose(layer.forward([x]), np.tanh(x))

    def test_output_dim_requires_build(self):
        with pytest.raises(RuntimeError):
            IdentityLayer().output_dim
