"""End-to-end integration: the full paper workflow at miniature scale.

Search on the simulated cluster -> post-train the best architecture with
real NumPy training -> forecast fields -> compare against the simulated
process models -> persist and reload the emulator.
"""

import numpy as np
import pytest

from repro.comparators import SimulatedCESM, SimulatedHYCOM, regional_rmse
from repro.data import EASTERN_PACIFIC
from repro.forecast import (
    PODLSTMEmulator,
    load_emulator,
    posttrain_architecture,
    save_emulator,
)
from repro.hpc import ThetaPartition, run_search
from repro.nas import (
    AgingEvolution,
    ArchitecturePerformanceModel,
    SurrogateEvaluator,
)
from repro.nas.space import StackedLSTMSpace
from repro.nas.space.ops import Operation


@pytest.fixture(scope="module")
def workflow(generator):
    """Run the whole pipeline once; individual tests assert pieces."""
    ops = (Operation("identity"), Operation("lstm", 8),
           Operation("lstm", 16))
    space = StackedLSTMSpace(n_layers=3, input_dim=3, output_dim=3,
                             operations=ops)
    model = ArchitecturePerformanceModel(space, seed=0)
    partition = ThetaPartition(n_nodes=8, wall_seconds=2500.0)
    search = AgingEvolution(space, rng=0, population_size=12, sample_size=4)
    tracker = run_search(search, SurrogateEvaluator(space, model),
                         partition, rng=3)

    train = generator.snapshots(np.arange(150))
    emulator = posttrain_architecture(space, search.best_architecture,
                                      train, epochs=20, rng=0)
    return {"space": space, "search": search, "tracker": tracker,
            "train": train, "emulator": emulator}


class TestSearchPhase:
    def test_search_found_architectures(self, workflow):
        assert workflow["tracker"].n_evaluations > 20
        assert workflow["search"].best_reward > 0.9

    def test_best_architecture_valid(self, workflow):
        workflow["space"].validate(workflow["search"].best_architecture)


class TestPosttrainPhase:
    def test_posttraining_learned(self, workflow):
        assert workflow["emulator"].validation_r2 > 0.3

    def test_emulator_scores_unseen_period(self, workflow, generator):
        future = generator.snapshots(np.arange(150, 220))
        score = workflow["emulator"].score(future)
        assert np.isfinite(score)


class TestSciencePhase:
    def test_beats_cesm_in_eastern_pacific(self, workflow, generator):
        targets = np.arange(170, 185)
        first = int(targets.min()) - workflow["emulator"].pipeline.window
        series = generator.snapshots(
            np.arange(first, targets.max() + 9))
        times, cols = workflow["emulator"].forecast_fields(series, horizon=1)
        absolute = times + first
        keep = np.isin(absolute, targets)
        pod = np.stack([generator.unflatten(c) for c in cols[:, keep].T])
        truth = generator.fields(targets)
        cesm = SimulatedCESM(generator).fields(targets)
        grid, mask = generator.grid, generator.ocean_mask
        pod_rmse = regional_rmse(truth, pod, grid, EASTERN_PACIFIC, mask)
        cesm_rmse = regional_rmse(truth, cesm, grid, EASTERN_PACIFIC, mask)
        assert pod_rmse < cesm_rmse


class TestPersistencePhase:
    def test_save_load_forecast_identical(self, workflow, tmp_path):
        emulator = workflow["emulator"]
        path = tmp_path / "workflow-emulator.npz"
        save_emulator(emulator, path)
        loaded = load_emulator(path)
        snaps = workflow["train"][:, -40:]
        a = emulator.score(snaps)
        b = loaded.score(snaps)
        assert a == pytest.approx(b, abs=1e-12)
