import numpy as np
import pytest

from repro.pod.snapshots import SnapshotStats, center_snapshots


class TestCenterSnapshots:
    def test_mean_removed(self, rng):
        snaps = rng.standard_normal((20, 7)) + 5.0
        centered, stats = center_snapshots(snaps)
        np.testing.assert_allclose(centered.mean(axis=1), 0.0, atol=1e-12)

    def test_mean_stored(self, rng):
        snaps = rng.standard_normal((20, 7))
        _, stats = center_snapshots(snaps)
        np.testing.assert_allclose(stats.mean, snaps.mean(axis=1))

    def test_roundtrip(self, rng):
        snaps = rng.standard_normal((10, 5))
        centered, stats = center_snapshots(snaps)
        np.testing.assert_allclose(stats.uncenter(centered), snaps)

    def test_original_untouched(self, rng):
        snaps = rng.standard_normal((10, 5))
        copy = snaps.copy()
        center_snapshots(snaps)
        np.testing.assert_array_equal(snaps, copy)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            center_snapshots(np.ones(5))

    def test_rejects_nan(self):
        snaps = np.ones((4, 3))
        snaps[0, 0] = np.nan
        with pytest.raises(ValueError):
            center_snapshots(snaps)


class TestSnapshotStats:
    def test_center_new_data(self, rng):
        snaps = rng.standard_normal((10, 5))
        _, stats = center_snapshots(snaps)
        other = rng.standard_normal((10, 3))
        np.testing.assert_allclose(stats.center(other),
                                   other - snaps.mean(axis=1)[:, None])

    def test_center_dim_mismatch(self, rng):
        _, stats = center_snapshots(rng.standard_normal((10, 5)))
        with pytest.raises(ValueError, match="dimension"):
            stats.center(np.ones((9, 2)))

    def test_uncenter_dim_mismatch(self, rng):
        _, stats = center_snapshots(rng.standard_normal((10, 5)))
        with pytest.raises(ValueError):
            stats.uncenter(np.ones((9, 2)))
