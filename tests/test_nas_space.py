import numpy as np
import pytest

from repro.nas.space import (
    Operation,
    StackedLSTMSpace,
    build_network,
    default_operations,
    describe_architecture,
)


class TestOperations:
    def test_default_catalog(self):
        ops = default_operations()
        assert len(ops) == 7
        assert ops[0].is_identity
        assert [op.units for op in ops[1:]] == [16, 32, 48, 64, 80, 96]

    def test_str(self):
        assert str(Operation("identity")) == "Identity"
        assert str(Operation("lstm", 32)) == "LSTM(32)"

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Operation("conv")

    def test_lstm_needs_units(self):
        with pytest.raises(ValueError):
            Operation("lstm")

    def test_identity_takes_no_units(self):
        with pytest.raises(ValueError):
            Operation("identity", 8)


class TestPaperGeometry:
    def test_paper_space_size(self):
        """7 ops ^ 5 layers x 2 ^ 9 skips = 8,605,184 (paper Sec. IV)."""
        space = StackedLSTMSpace()
        assert space.n_layers == 5
        assert space.n_skip_nodes == 9
        assert space.size == 8_605_184

    def test_skip_slots_pattern(self):
        """1 + 2 + 3 + 3 slots for layers 2..5 at depth limit 3."""
        space = StackedLSTMSpace()
        per_target = {}
        for slot in space.skip_slots:
            per_target.setdefault(slot.target, []).append(slot.source)
        assert {k: len(v) for k, v in per_target.items()} == \
            {2: 1, 3: 2, 4: 3, 5: 3}

    def test_fig2_two_layer_variant(self):
        """The paper's 2-node example has a single inter-layer skip node."""
        space = StackedLSTMSpace(n_layers=2)
        assert space.n_skip_nodes == 1

    def test_variable_node_count(self):
        assert StackedLSTMSpace().n_variable_nodes == 14

    def test_cardinalities(self, small_space):
        assert small_space.cardinalities == (4, 4, 4, 2, 2, 2)
        assert small_space.size == 4 ** 3 * 2 ** 3


class TestEncoding:
    def test_validate_roundtrip(self, small_space, rng):
        arch = small_space.random_architecture(rng)
        assert small_space.validate(arch) == arch

    def test_validate_length(self, small_space):
        with pytest.raises(ValueError, match="length"):
            small_space.validate((0, 0))

    def test_validate_range(self, small_space):
        bad = [0] * 6
        bad[0] = 9
        with pytest.raises(ValueError, match="out of range"):
            small_space.validate(tuple(bad))

    def test_index_roundtrip_exhaustive(self, small_space):
        for rank in range(0, small_space.size, 37):
            arch = small_space.from_index(rank)
            assert small_space.index_of(arch) == rank

    def test_index_bijective_sample(self, rng):
        space = StackedLSTMSpace()
        seen = set()
        for _ in range(200):
            arch = space.random_architecture(rng)
            seen.add(space.index_of(arch))
        assert all(0 <= r < space.size for r in seen)

    def test_from_index_out_of_range(self, small_space):
        with pytest.raises(ValueError):
            small_space.from_index(small_space.size)


class TestSamplingAndMutation:
    def test_random_architecture_valid(self, small_space, rng):
        for _ in range(50):
            small_space.validate(small_space.random_architecture(rng))

    def test_random_covers_space(self, small_space, rng):
        ranks = {small_space.index_of(small_space.random_architecture(rng))
                 for _ in range(600)}
        assert len(ranks) > 300  # decent coverage of 1024

    def test_mutation_changes_exactly_one_node(self, small_space, rng):
        for _ in range(100):
            parent = small_space.random_architecture(rng)
            child = small_space.mutate(parent, rng)
            diff = sum(1 for a, b in zip(parent, child) if a != b)
            assert diff == 1

    def test_mutation_valid(self, small_space, rng):
        arch = small_space.random_architecture(rng)
        for _ in range(50):
            arch = small_space.mutate(arch, rng)
            small_space.validate(arch)

    def test_mutation_reaches_whole_space(self, small_space, rng):
        """The mutation graph is connected: repeated mutation explores."""
        arch = (0,) * 6
        seen = set()
        for _ in range(3000):
            arch = small_space.mutate(arch, rng)
            seen.add(small_space.index_of(arch))
        assert len(seen) > small_space.size // 3


class TestWalkAndParameters:
    def test_builder_matches_param_count(self, small_space, rng):
        for _ in range(30):
            arch = small_space.random_architecture(rng)
            net = build_network(small_space, arch, rng=0)
            assert net.n_parameters == small_space.count_parameters(arch)

    def test_all_identity_still_has_output_head(self, small_space):
        arch = (0, 0, 0) + (0,) * 3
        params = small_space.count_parameters(arch)
        # Just the constant output LSTM on the raw input.
        assert params == 4 * ((3 + 3) * 3 + 3)

    def test_network_output_shape(self, small_space, rng):
        arch = small_space.random_architecture(rng)
        net = build_network(small_space, arch, rng=0)
        y = net.forward(rng.standard_normal((2, 6, 3)))
        assert y.shape == (2, 6, 3)

    def test_skips_add_dense_projections(self, small_space):
        no_skips = (1, 2, 3) + (0,) * 3
        all_skips = (1, 2, 3) + (1,) * 3
        assert small_space.count_parameters(all_skips) > \
            small_space.count_parameters(no_skips)

    def test_skip_onto_self_collapsed(self, small_space):
        """An identity layer can collapse a skip source onto the main
        path; adding a tensor to itself is skipped by the walk."""
        # layer1=identity, layer2=lstm, skip input->2 active: the skip
        # source (input) equals the main path (input) -> no projection.
        arch = (0, 1, 0, 1, 0, 0)
        specs = list(small_space.walk(arch))
        assert not any(s["type"] == "dense" for s in specs)

    def test_describe_mentions_ops(self, small_space, rng):
        arch = small_space.random_architecture(rng)
        text = describe_architecture(small_space, arch)
        assert "layer ops" in text


class TestConstructorValidation:
    def test_needs_two_ops(self):
        with pytest.raises(ValueError):
            StackedLSTMSpace(operations=(Operation("identity"),))

    def test_positive_layers(self):
        with pytest.raises(ValueError):
            StackedLSTMSpace(n_layers=0)
