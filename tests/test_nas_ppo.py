import numpy as np
import pytest

from repro.nas.algorithms.ppo import PPOAgent, PPOConfig
from repro.nas.algorithms.rl_nas import DistributedRL
from repro.nas import ArchitecturePerformanceModel


class TestPPOConfig:
    def test_defaults_valid(self):
        PPOConfig()

    @pytest.mark.parametrize("kwargs", [
        {"clip_epsilon": 0.0}, {"clip_epsilon": 1.0},
        {"learning_rate": 0.0}, {"update_epochs": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PPOConfig(**kwargs)


class TestPPOAgent:
    def test_sample_valid(self, small_space):
        agent = PPOAgent(small_space, rng=0)
        for _ in range(20):
            small_space.validate(agent.sample_architecture())

    def test_initial_policy_uniform(self, small_space):
        agent = PPOAgent(small_space, rng=0)
        # log-prob of any architecture equals -sum(log card).
        expected = -float(np.sum(np.log(small_space.cardinalities)))
        arch = agent.sample_architecture()
        assert agent.log_prob(arch) == pytest.approx(expected, rel=1e-9)

    def test_batch_size(self, small_space):
        agent = PPOAgent(small_space, rng=0)
        assert len(agent.sample_batch(7)) == 7
        with pytest.raises(ValueError):
            agent.sample_batch(0)

    def test_update_shifts_probability_toward_reward(self, small_space):
        """Architectures with higher reward gain probability."""
        agent = PPOAgent(small_space, rng=0)
        good = (1,) * len(small_space.cardinalities)
        bad = (0,) * len(small_space.cardinalities)
        before = agent.log_prob(good)
        for _ in range(20):
            agent.update([good, bad], [1.0, 0.0])
        assert agent.log_prob(good) > before
        assert agent.log_prob(good) > agent.log_prob(bad)

    def test_value_baseline_tracks_rewards(self, small_space):
        agent = PPOAgent(small_space, rng=0)
        batch = agent.sample_batch(8)
        for _ in range(50):
            agent.update(batch, [0.8] * 8)
        assert agent.value_baseline == pytest.approx(0.8, abs=0.05)

    def test_entropy_decreases_with_exploitation(self, small_space):
        agent = PPOAgent(small_space, rng=0)
        initial = agent.policy_entropy()
        target = tuple(c - 1 for c in small_space.cardinalities)
        others = [agent.sample_architecture() for _ in range(7)]
        for _ in range(30):
            batch = [target] + others
            agent.update(batch, [1.0] + [0.0] * 7)
        assert agent.policy_entropy() < initial

    def test_gradient_batch_mismatch(self, small_space):
        agent = PPOAgent(small_space, rng=0)
        with pytest.raises(ValueError):
            agent.compute_gradients([agent.sample_architecture()], [])

    def test_apply_gradient_shape_check(self, small_space):
        agent = PPOAgent(small_space, rng=0)
        with pytest.raises(ValueError):
            agent.apply_gradients([np.zeros(2)], 0.0)


class TestDistributedRL:
    def test_round_geometry(self, small_space):
        rl = DistributedRL(small_space, rng=0, n_agents=3,
                           workers_per_agent=4)
        batches = rl.propose_round()
        assert len(batches) == 3
        assert all(len(b) == 4 for b in batches)

    def test_synchronous_flag(self, small_space):
        assert not DistributedRL(small_space, workers_per_agent=2).asynchronous

    def test_agents_stay_identical_after_allreduce(self, small_space):
        """The mean all-reduce keeps all agent policies in lock step."""
        rl = DistributedRL(small_space, rng=0, n_agents=3,
                           workers_per_agent=4)
        rng = np.random.default_rng(1)
        for _ in range(3):
            batches = rl.propose_round()
            rewards = [[float(rng.random()) for _ in b] for b in batches]
            rl.finish_round(batches, rewards)
        ref = rl.agents[0].logits
        for agent in rl.agents[1:]:
            for a, b in zip(ref, agent.logits):
                np.testing.assert_allclose(a, b)

    def test_finish_round_shape_check(self, small_space):
        rl = DistributedRL(small_space, rng=0, n_agents=2,
                           workers_per_agent=2)
        with pytest.raises(ValueError):
            rl.finish_round([], [])

    def test_run_serial_improves(self, small_space):
        oracle = ArchitecturePerformanceModel(small_space, seed=0,
                                              noise_std=0.002)
        rl = DistributedRL(small_space, rng=0, n_agents=3,
                           workers_per_agent=6)
        eval_rng = np.random.default_rng(3)
        rewards = rl.run_serial(
            lambda a: oracle.observed_quality(a, eval_rng), n_rounds=40)
        early = np.mean(rewards[:54])
        late = np.mean(rewards[-54:])
        assert late > early

    def test_best_tracked_through_tell(self, small_space):
        rl = DistributedRL(small_space, rng=0, n_agents=2,
                           workers_per_agent=2)
        batches = rl.propose_round()
        rewards = [[0.1, 0.9], [0.3, 0.2]]
        rl.finish_round(batches, rewards)
        assert rl.best_reward == 0.9
        assert rl.best_architecture == batches[0][1]

    def test_ask_tell_round_robin(self, small_space):
        rl = DistributedRL(small_space, rng=0, n_agents=2,
                           workers_per_agent=2)
        for _ in range(4):
            arch = rl.ask()
            small_space.validate(arch)
            rl.tell(arch, 0.5)
        assert rl.n_told == 4
