"""Emulator bundles (repro.serve.bundle): exact round-trips and schema
validation.

The load-bearing guarantee is bitwise fidelity — a bundled emulator must
forecast with exactly the bits of the in-memory one, because the serving
engine's determinism contract (docs/SERVING.md) is defined against the
original model.
"""

import json

import numpy as np
import pytest

from repro.forecast import PODLSTMEmulator
from repro.serve import (BUNDLE_FORMAT, BUNDLE_VERSION, load_bundle,
                         read_bundle_header, save_bundle)


@pytest.fixture()
def windows(tiny_emulator, generator):
    snaps = generator.snapshots(np.arange(60))
    return tiny_emulator.pipeline.windows_from_snapshots(snaps).inputs


def _write_raw(path, header):
    """A bundle-shaped npz with an arbitrary header (schema attacks)."""
    np.savez(path, __bundle__=np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8))


class TestRoundTrip:
    def test_forecasts_bitwise_identical(self, tmp_path, tiny_emulator,
                                         windows):
        path = save_bundle(tiny_emulator, tmp_path / "model.npz")
        loaded = load_bundle(path)
        np.testing.assert_array_equal(
            loaded.predict_windows(windows),
            tiny_emulator.predict_windows(windows))

    def test_pipeline_state_exact(self, tmp_path, tiny_emulator, generator):
        path = save_bundle(tiny_emulator, tmp_path / "model.npz")
        loaded = load_bundle(path)
        snaps = generator.snapshots(np.arange(60))
        np.testing.assert_array_equal(
            loaded.pipeline.transform(snaps),
            tiny_emulator.pipeline.transform(snaps))
        assert loaded.pipeline.n_modes == tiny_emulator.pipeline.n_modes
        assert loaded.pipeline.window == tiny_emulator.pipeline.window
        assert loaded.train_fraction == tiny_emulator.train_fraction

    def test_suffix_normalized(self, tmp_path, tiny_emulator):
        path = save_bundle(tiny_emulator, tmp_path / "model")
        assert path.name == "model.npz"
        # Loading works from the suffixed and unsuffixed spelling alike.
        load_bundle(tmp_path / "model")
        load_bundle(path)

    def test_metadata_round_trips(self, tmp_path, tiny_emulator):
        meta = {"algorithm": "ae", "seed": 7, "r2": 0.93}
        path = save_bundle(tiny_emulator, tmp_path / "m.npz",
                           metadata=meta)
        header = read_bundle_header(path)
        assert header["metadata"] == meta
        assert header["format"] == BUNDLE_FORMAT
        assert header["version"] == BUNDLE_VERSION

    def test_unfitted_emulator_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="before fit"):
            save_bundle(PODLSTMEmulator(), tmp_path / "x.npz")


class TestSchemaValidation:
    def test_unknown_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        _write_raw(path, {"format": BUNDLE_FORMAT,
                          "version": BUNDLE_VERSION + 1})
        with pytest.raises(ValueError,
                           match="unsupported bundle schema version"):
            load_bundle(path)
        with pytest.raises(ValueError,
                           match="unsupported bundle schema version"):
            read_bundle_header(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        _write_raw(path, {"format": "something-else",
                          "version": BUNDLE_VERSION})
        with pytest.raises(ValueError, match="not an emulator bundle"):
            load_bundle(path)

    def test_plain_npz_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, a=np.arange(3))
        with pytest.raises(ValueError, match="missing __bundle__"):
            read_bundle_header(path)
