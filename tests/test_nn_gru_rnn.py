"""GRU and SimpleRNN layers: shape/causality invariants and exact
numerical gradient checks (same rigour as the LSTM tests)."""

import numpy as np
import pytest

from repro.nn.layers import GRULayer, SimpleRNNLayer
from tests.test_nn_gradients import check_layer_gradients


@pytest.mark.parametrize("layer_cls", [GRULayer, SimpleRNNLayer])
class TestRecurrentInvariants:
    def test_output_shape(self, layer_cls, rng):
        layer = layer_cls(6)
        layer.build([4], rng=0)
        assert layer.forward([rng.standard_normal((3, 5, 4))]).shape == \
            (3, 5, 6)

    def test_causality(self, layer_cls, rng):
        layer = layer_cls(5)
        layer.build([3], rng=0)
        x = rng.standard_normal((1, 8, 3))
        y = layer.forward([x])
        x2 = x.copy()
        x2[0, 5:] += 100.0
        y2 = layer.forward([x2])
        np.testing.assert_allclose(y2[0, :5], y[0, :5], atol=1e-12)
        assert not np.allclose(y2[0, 5:], y[0, 5:])

    def test_state_propagates(self, layer_cls, rng):
        layer = layer_cls(5)
        layer.build([3], rng=0)
        x = rng.standard_normal((1, 8, 3))
        y = layer.forward([x])
        x2 = x.copy()
        x2[0, 0] += 1.0
        y2 = layer.forward([x2])
        assert not np.allclose(y2[0, -1], y[0, -1])

    def test_batch_independence(self, layer_cls, rng):
        layer = layer_cls(4)
        layer.build([2], rng=0)
        x = rng.standard_normal((3, 6, 2))
        np.testing.assert_allclose(layer.forward([x])[1:2],
                                   layer.forward([x[1:2]]), atol=1e-12)

    def test_output_bounded(self, layer_cls, rng):
        layer = layer_cls(4)
        layer.build([2], rng=0)
        y = layer.forward([10.0 * rng.standard_normal((2, 20, 2))])
        assert np.abs(y).max() <= 1.0

    def test_rejects_multi_input(self, layer_cls):
        with pytest.raises(ValueError):
            layer_cls(4).build([2, 2], rng=0)


class TestParamCounts:
    def test_gru(self):
        layer = GRULayer(10)
        layer.build([4], rng=0)
        assert layer.n_parameters == 3 * ((4 + 10) * 10 + 10)

    def test_rnn(self):
        layer = SimpleRNNLayer(10)
        layer.build([4], rng=0)
        assert layer.n_parameters == (4 + 10) * 10 + 10


class TestGradients:
    def test_gru_gradients(self, rng):
        layer = GRULayer(3)
        layer.build([2], rng=0)
        check_layer_gradients(layer, [rng.standard_normal((2, 4, 2))], rng,
                              atol=2e-6)

    def test_gru_longer_sequence(self, rng):
        layer = GRULayer(2)
        layer.build([3], rng=1)
        check_layer_gradients(layer, [rng.standard_normal((1, 7, 3))], rng,
                              atol=2e-6)

    def test_rnn_gradients(self, rng):
        layer = SimpleRNNLayer(4)
        layer.build([3], rng=0)
        check_layer_gradients(layer, [rng.standard_normal((2, 5, 3))], rng)


class TestTrainability:
    @pytest.mark.parametrize("layer_cls", [GRULayer, SimpleRNNLayer])
    def test_learns_smoothing_task(self, layer_cls, rng):
        from repro.nn import Network, Trainer
        net = Network(input_dim=2, rng=0)
        net.add_node("rec", layer_cls(12), ["input"])
        net.add_node("out", layer_cls(2), ["rec"])
        x = rng.standard_normal((150, 6, 2))
        y = 0.3 * np.cumsum(x, axis=1)
        history = Trainer(epochs=30, batch_size=32,
                          learning_rate=0.01).fit(net, x, y, rng=0)
        assert history.train_loss[-1] < history.train_loss[0] * 0.6
