"""Failure injection: the searches must survive dying evaluations."""

import numpy as np
import pytest

from repro.hpc import (
    ClusterConfig,
    ThetaPartition,
    run_asynchronous_search,
    run_synchronous_rl_search,
)
from repro.hpc.theta import rl_node_allocation
from repro.nas import (
    AgingEvolution,
    ArchitecturePerformanceModel,
    DistributedRL,
    RandomSearch,
    SurrogateEvaluator,
)

PARTITION = ThetaPartition(n_nodes=12, wall_seconds=3000.0)


@pytest.fixture()
def evaluator(small_space):
    return SurrogateEvaluator(
        small_space, ArchitecturePerformanceModel(small_space, seed=0))


class TestFailureConfig:
    def test_zero_rate_never_fails(self):
        cfg = ClusterConfig(failure_rate=0.0)
        rng = np.random.default_rng(0)
        assert all(cfg.sample_failure(rng) is None for _ in range(100))

    def test_rate_respected(self):
        cfg = ClusterConfig(failure_rate=0.3)
        rng = np.random.default_rng(0)
        fails = sum(cfg.sample_failure(rng) is not None
                    for _ in range(3000))
        assert 700 < fails < 1100

    def test_fraction_in_range(self):
        cfg = ClusterConfig(failure_rate=0.99)
        rng = np.random.default_rng(0)
        fracs = [cfg.sample_failure(rng) for _ in range(200)]
        fracs = [f for f in fracs if f is not None]
        assert all(0.05 <= f <= 1.0 for f in fracs)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ClusterConfig(failure_rate=1.0)
        with pytest.raises(ValueError):
            ClusterConfig(failure_rate=-0.1)


class TestAsynchronousUnderFailures:
    def test_search_completes_and_counts_failures(self, small_space,
                                                  evaluator):
        cluster = ClusterConfig(failure_rate=0.25)
        ae = AgingEvolution(small_space, rng=0, population_size=10,
                            sample_size=3)
        tracker = run_asynchronous_search(ae, evaluator, PARTITION,
                                          cluster=cluster, rng=1)
        assert tracker.n_failures > 0
        assert tracker.n_evaluations > 0
        # Only successful evaluations reach the algorithm.
        assert ae.n_told == tracker.n_evaluations

    def test_throughput_degrades_gracefully(self, small_space, evaluator):
        def completed(rate):
            rs = RandomSearch(small_space, rng=0)
            tracker = run_asynchronous_search(
                rs, evaluator, PARTITION,
                cluster=ClusterConfig(failure_rate=rate), rng=1)
            return tracker.n_evaluations

        clean = completed(0.0)
        faulty = completed(0.3)
        # Failures cost throughput, but far from everything: failed runs
        # die partway and the node immediately recycles.
        assert 0.4 * clean < faulty < clean

    def test_search_quality_robust(self, small_space, evaluator):
        """AE still finds good architectures with 20% failures."""
        ae = AgingEvolution(small_space, rng=0, population_size=10,
                            sample_size=3)
        tracker = run_asynchronous_search(
            ae, evaluator, PARTITION,
            cluster=ClusterConfig(failure_rate=0.2), rng=1)
        assert ae.best_reward > 0.9


class TestSynchronousUnderFailures:
    def test_barrier_survives_failures(self, small_space, evaluator):
        wpa = rl_node_allocation(12, 2).workers_per_agent
        rl = DistributedRL(small_space, rng=0, n_agents=2,
                           workers_per_agent=wpa)
        cluster = ClusterConfig(failure_rate=0.25, failure_reward=0.0)
        tracker = run_synchronous_rl_search(rl, evaluator, PARTITION,
                                            cluster=cluster, rng=1)
        # Rounds keep completing despite dead workers (no deadlock).
        assert rl.round_index >= 2
        assert tracker.n_failures > 0

    def test_failure_rewards_not_recorded_as_evaluations(self, small_space,
                                                         evaluator):
        wpa = rl_node_allocation(12, 2).workers_per_agent
        rl = DistributedRL(small_space, rng=0, n_agents=2,
                           workers_per_agent=wpa)
        cluster = ClusterConfig(failure_rate=0.25)
        tracker = run_synchronous_rl_search(rl, evaluator, PARTITION,
                                            cluster=cluster, rng=1)
        # Completed evaluations + failures == total dispatched work that
        # finished before the wall (each worker slot resolves exactly once
        # per completed round).
        per_round = 2 * wpa
        resolved = tracker.n_evaluations + tracker.n_failures
        assert resolved >= rl.round_index * per_round
