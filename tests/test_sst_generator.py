import hashlib

import numpy as np
import pytest

from repro.data.grid import LatLonGrid
from repro.data.sst import SSTConfig, SyntheticSST, WEEKS_PER_YEAR


class TestDeterminism:
    def test_same_seed_same_field(self, coarse_grid):
        a = SyntheticSST(grid=coarse_grid, seed=5).field(10)
        b = SyntheticSST(grid=coarse_grid, seed=5).field(10)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_differs(self, coarse_grid):
        a = SyntheticSST(grid=coarse_grid, seed=5).field(10)
        b = SyntheticSST(grid=coarse_grid, seed=6).field(10)
        assert not np.allclose(a, b, equal_nan=True)

    def test_random_access_matches_sequential(self, generator):
        sequential = generator.fields(np.arange(5, 9))
        direct = generator.field(7)
        np.testing.assert_allclose(sequential[2], direct, equal_nan=True)

    def test_nonconsecutive_indices(self, generator):
        fields = generator.fields([3, 50, 7])
        np.testing.assert_allclose(fields[0], generator.field(3),
                                   equal_nan=True)
        np.testing.assert_allclose(fields[1], generator.field(50),
                                   equal_nan=True)


class TestGoldenArchive:
    """Pinned digests of the synthetic archive: any change to the
    generator's numerics (patterns, oscillators, eddy seeding) shows up
    here as a cross-run reproducibility break, not as silent drift of
    every downstream science result."""

    # SHA-256 of the first 4 snapshots at 4 degrees, values rounded to
    # 1e-6 degC (absorbs last-bit FP noise, pins everything physical).
    GOLDEN = {
        0: "a1fcfefd0de8bc1432f3e8120aea76ce"
           "00160c6ec139cbee83b7c9d0963bb2ec",
        123: "76413223354e0ddb4902c568fa9484f6"
             "44ccc32e469d9a37c2c454b0809388d8",
    }

    @staticmethod
    def _digest(seed: int) -> str:
        gen = SyntheticSST(grid=LatLonGrid(degrees=4.0), seed=seed)
        fields = gen.fields(np.arange(4))
        return hashlib.sha256(np.round(fields, 6).tobytes()).hexdigest()

    @pytest.mark.parametrize("seed", sorted(GOLDEN))
    def test_archive_digest_is_pinned(self, seed):
        assert self._digest(seed) == self.GOLDEN[seed]

    def test_digests_distinguish_seeds(self):
        assert len(set(self.GOLDEN.values())) == len(self.GOLDEN)


class TestGoldenDriftScenarios:
    """Pinned digests of the drift scenarios, plus the regression that
    matters most: `scenario="none"` (and any scenario before its onset)
    is bitwise identical to the historical archive — drift support must
    never perturb the baseline goldens above."""

    # Same digest recipe as TestGoldenArchive (4 degrees, seed 0, weeks
    # 0-3, 1e-6 rounding); onset week 1 / ramp 2 so the drift is live
    # inside the digested window.
    GOLDEN = {
        "enso_shift": "eb3828d9f1979d4dc32ac722cab60c6f"
                      "c6b776aa9ba738cc3236d482a3e30d24",
        "trend_acceleration": "45967aa70f62a784ddb836db4bc6e850"
                              "33905519d73c1db7f4fb51525bad2943",
    }

    @staticmethod
    def _generator(scenario: str, onset: int = 1) -> SyntheticSST:
        config = SSTConfig(scenario=scenario, scenario_onset_week=onset,
                           scenario_ramp_weeks=2)
        return SyntheticSST(grid=LatLonGrid(degrees=4.0), seed=0,
                            config=config)

    @pytest.mark.parametrize("scenario", sorted(GOLDEN))
    def test_scenario_digest_is_pinned(self, scenario):
        fields = self._generator(scenario).fields(np.arange(4))
        digest = hashlib.sha256(np.round(fields, 6).tobytes()).hexdigest()
        assert digest == self.GOLDEN[scenario]

    def test_scenarios_distinct_from_baseline_and_each_other(self):
        digests = set(self.GOLDEN.values()) | set(
            TestGoldenArchive.GOLDEN.values())
        assert len(digests) == len(self.GOLDEN) \
            + len(TestGoldenArchive.GOLDEN)

    def test_none_scenario_bitwise_baseline(self):
        """Explicit `scenario="none"` config == default config, bitwise."""
        explicit = SyntheticSST(
            grid=LatLonGrid(degrees=4.0), seed=0,
            config=SSTConfig(scenario="none"))
        default = SyntheticSST(grid=LatLonGrid(degrees=4.0), seed=0)
        np.testing.assert_array_equal(explicit.fields(np.arange(4)),
                                      default.fields(np.arange(4)))

    @pytest.mark.parametrize("scenario",
                             ["enso_shift", "trend_acceleration"])
    def test_before_onset_bitwise_baseline(self, scenario):
        """Weeks at or before the onset are untouched by the scenario."""
        drifted = self._generator(scenario, onset=3).fields(np.arange(4))
        baseline = SyntheticSST(
            grid=LatLonGrid(degrees=4.0), seed=0).fields(np.arange(4))
        np.testing.assert_array_equal(drifted, baseline)

    @pytest.mark.parametrize("scenario",
                             ["enso_shift", "trend_acceleration"])
    def test_after_onset_differs(self, scenario):
        gen = self._generator(scenario, onset=1)
        baseline = SyntheticSST(grid=LatLonGrid(degrees=4.0), seed=0)
        a, b = gen.field(3), baseline.field(3)
        assert not np.allclose(a, b, equal_nan=True)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            SSTConfig(scenario="meteor_strike")

    def test_invalid_ramp_rejected(self):
        with pytest.raises(ValueError):
            SSTConfig(scenario="enso_shift", scenario_ramp_weeks=0)


class TestFieldStructure:
    def test_land_is_nan(self, generator):
        field = generator.field(0)
        assert np.isnan(field[~generator.ocean_mask]).all()
        assert np.isfinite(field[generator.ocean_mask]).all()

    def test_physically_plausible_range(self, generator):
        field = generator.field(100)
        ocean = field[generator.ocean_mask]
        assert ocean.min() > -15.0
        assert ocean.max() < 45.0

    def test_tropics_warmer_than_poles(self, generator):
        field = generator.field(0)
        grid = generator.grid
        lat2d, _ = grid.mesh()
        tropics = generator.ocean_mask & (np.abs(lat2d) < 15)
        polar = generator.ocean_mask & (np.abs(lat2d) > 60)
        assert np.nanmean(field[tropics]) > np.nanmean(field[polar]) + 10.0

    def test_seasonal_cycle_present(self, generator):
        # Northern midlatitude point: summer warmer than winter.
        i, j = generator.grid.nearest_index(42.0, 180.0)
        # one annual cycle sampled at 13-week intervals
        year = [generator.field(t)[i, j] for t in range(0, 53, 13)]
        assert max(year) - min(year) > 2.0

    def test_hemispheres_antiphased(self, generator):
        grid = generator.grid
        i_n, j_n = grid.nearest_index(42.0, 180.0)
        i_s, j_s = grid.nearest_index(-42.0, 180.0)
        series_n, series_s = [], []
        for t in range(0, 105, 4):
            f = generator.field(t)
            series_n.append(f[i_n, j_n])
            series_s.append(f[i_s, j_s])
        corr = np.corrcoef(series_n, series_s)[0, 1]
        assert corr < -0.3

    def test_warming_trend(self, coarse_grid):
        cfg = SSTConfig(trend_per_year=0.05)
        gen = SyntheticSST(grid=coarse_grid, seed=0, config=cfg)
        early = np.nanmean(gen.fields(np.arange(0, 52, 13)))
        late_start = int(30 * WEEKS_PER_YEAR)
        late = np.nanmean(gen.fields(np.arange(late_start,
                                               late_start + 52, 13)))
        assert late > early + 0.5


class TestIndices:
    def test_enso_reproducible(self, generator):
        assert generator.enso_index(100) == generator.enso_index(100)

    def test_enso_bounded(self, generator):
        values = [generator.enso_index(t) for t in range(0, 1914, 13)]
        assert max(np.abs(values)) < 6.0

    def test_enso_oscillates(self, generator):
        values = np.array([generator.enso_index(t) for t in range(1914)])
        sign_changes = np.sum(np.diff(np.sign(values - values.mean())) != 0)
        # Period ~170 weeks across 1914 weeks -> ~20+ crossings.
        assert sign_changes >= 10

    def test_enso_negative_time_supported(self, generator):
        # Eddy warm-up reaches before t=0.
        assert np.isfinite(generator.enso_index(-10))

    def test_enso_too_early_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.enso_index(-10_000)

    def test_weather_indices_standardized(self, generator):
        x = np.array([generator.weather_index(t) for t in range(1000)])
        z = np.array([generator.dipole_index(t) for t in range(1000)])
        assert 0.5 < x.std() < 2.0
        assert 0.5 < z.std() < 2.0

    def test_weather_chaotic_decorrelation(self, generator):
        x = np.array([generator.weather_index(t) for t in range(1200)])
        ac1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        ac30 = np.corrcoef(x[:-30], x[30:])[0, 1]
        assert ac1 > 0.6          # smooth at one week
        assert abs(ac30) < 0.55   # decorrelates within a season

    def test_series_extension(self, coarse_grid):
        gen = SyntheticSST(grid=coarse_grid, seed=9)
        early = gen.enso_index(10)
        gen.enso_index(3000)  # force extension beyond initial block
        assert gen.enso_index(10) == early


class TestSnapshots:
    def test_snapshot_shape(self, generator):
        snaps = generator.snapshots([0, 1, 2])
        assert snaps.shape == (generator.n_ocean, 3)

    def test_snapshots_finite(self, generator):
        assert np.isfinite(generator.snapshots([5, 6])).all()

    def test_unflatten_roundtrip(self, generator):
        field = generator.field(3)
        vec = field[generator.ocean_mask]
        np.testing.assert_allclose(generator.unflatten(vec), field,
                                   equal_nan=True)

    def test_unflatten_wrong_size(self, generator):
        with pytest.raises(ValueError):
            generator.unflatten(np.zeros(3))

    def test_indices_must_be_1d(self, generator):
        with pytest.raises(ValueError):
            generator.fields(np.zeros((2, 2), dtype=int))


class TestConfigValidation:
    def test_bad_rho(self):
        with pytest.raises(ValueError):
            SSTConfig(eddy_rho=1.0)

    def test_bad_truncation(self):
        with pytest.raises(ValueError):
            SSTConfig(eddy_truncation=0)

    def test_eddy_has_memory(self, coarse_grid):
        gen = SyntheticSST(grid=coarse_grid, seed=4)
        e0 = gen._eddy_field(100, {})
        e1 = gen._eddy_field(101, {})
        mask = gen.ocean_mask
        corr = np.corrcoef(e0[mask], e1[mask])[0, 1]
        assert corr > 0.4  # AR(1) rho = 0.65
