import numpy as np
import pytest

from repro.nn.activations import (
    Identity,
    ReLU,
    Sigmoid,
    Tanh,
    get_activation,
    sigmoid,
)

ACTIVATIONS = [Identity(), ReLU(), Sigmoid(), Tanh()]


class TestForward:
    def test_identity(self, rng):
        x = rng.standard_normal((3, 4))
        np.testing.assert_array_equal(Identity().forward(x), x)

    def test_relu(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(ReLU().forward(x), [0.0, 0.0, 3.0])

    def test_sigmoid_range_and_symmetry(self, rng):
        x = rng.standard_normal(100) * 10
        y = Sigmoid().forward(x)
        assert np.all((y > 0) & (y < 1))
        np.testing.assert_allclose(Sigmoid().forward(-x), 1 - y, atol=1e-12)

    def test_sigmoid_extreme_stable(self):
        y = sigmoid(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(y))
        np.testing.assert_allclose(y, [0.0, 1.0], atol=1e-12)

    def test_tanh(self, rng):
        x = rng.standard_normal(10)
        np.testing.assert_allclose(Tanh().forward(x), np.tanh(x))


class TestBackward:
    @pytest.mark.parametrize("act", ACTIVATIONS, ids=lambda a: a.name)
    def test_numerical_derivative(self, act, rng):
        x = rng.standard_normal(200) + 0.05  # avoid ReLU kink at 0
        y = act.forward(x)
        grad = act.backward(np.ones_like(x), y)
        eps = 1e-6
        numeric = (act.forward(x + eps) - act.forward(x - eps)) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_relu_blocks_negative(self):
        x = np.array([-1.0, 2.0])
        y = ReLU().forward(x)
        grad = ReLU().backward(np.array([5.0, 5.0]), y)
        np.testing.assert_allclose(grad, [0.0, 5.0])


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [("identity", Identity),
                                          ("relu", ReLU),
                                          ("sigmoid", Sigmoid),
                                          ("tanh", Tanh)])
    def test_lookup(self, name, cls):
        assert isinstance(get_activation(name), cls)

    def test_none_is_identity(self):
        assert isinstance(get_activation(None), Identity)

    def test_instance_passthrough(self):
        act = ReLU()
        assert get_activation(act) is act

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown activation"):
            get_activation("swish")
