import numpy as np

from repro.data.grid import EASTERN_PACIFIC, LatLonGrid
from repro.data.mask import synthetic_land_mask


class TestSyntheticLandMask:
    def test_shape(self, coarse_grid):
        assert synthetic_land_mask(coarse_grid).shape == coarse_grid.shape

    def test_deterministic(self, coarse_grid):
        a = synthetic_land_mask(coarse_grid)
        b = synthetic_land_mask(coarse_grid)
        np.testing.assert_array_equal(a, b)

    def test_ocean_fraction_plausible(self):
        mask = synthetic_land_mask(LatLonGrid(degrees=1.0))
        assert 0.55 < mask.mean() < 0.85

    def test_eastern_pacific_is_ocean(self):
        grid = LatLonGrid(degrees=1.0)
        mask = synthetic_land_mask(grid)
        assert mask[EASTERN_PACIFIC.mask(grid)].all()

    def test_antarctica_is_land(self):
        grid = LatLonGrid(degrees=1.0)
        mask = synthetic_land_mask(grid)
        i, j = grid.nearest_index(-85.0, 100.0)
        assert not mask[i, j]

    def test_continent_interiors_are_land(self):
        grid = LatLonGrid(degrees=1.0)
        mask = synthetic_land_mask(grid)
        for lat, lon in [(45.0, 265.0),   # North America
                         (55.0, 60.0),    # Eurasia
                         (-25.0, 133.0),  # Australia
                         (0.0, 20.0)]:    # Africa
            i, j = grid.nearest_index(lat, lon)
            assert not mask[i, j], f"expected land at ({lat}, {lon})"

    def test_open_oceans_are_ocean(self):
        grid = LatLonGrid(degrees=1.0)
        mask = synthetic_land_mask(grid)
        for lat, lon in [(0.0, 180.0),    # central Pacific
                         (-30.0, 340.0),  # South Atlantic
                         (-40.0, 80.0)]:  # southern Indian Ocean
            i, j = grid.nearest_index(lat, lon)
            assert mask[i, j], f"expected ocean at ({lat}, {lon})"

    def test_consistent_across_resolutions(self):
        # A point that is deep ocean at 1 degree stays ocean at 4 degrees.
        for degrees in (1.0, 4.0):
            grid = LatLonGrid(degrees=degrees)
            mask = synthetic_land_mask(grid)
            i, j = grid.nearest_index(0.0, 180.0)
            assert mask[i, j]
