import numpy as np
import pytest

from repro.pod import fit_pod, pod_method_of_snapshots, pod_svd


@pytest.fixture()
def snapshots(rng):
    """Low-rank + noise snapshot matrix, 60 dof x 25 times."""
    t = np.linspace(0, 4 * np.pi, 25)
    u1 = rng.standard_normal(60)
    u2 = rng.standard_normal(60)
    field = (np.outer(u1, 3.0 * np.sin(t)) + np.outer(u2, np.cos(2 * t))
             + 0.01 * rng.standard_normal((60, 25)))
    return field + 2.0


class TestOrthonormality:
    def test_method_of_snapshots(self, snapshots):
        basis = pod_method_of_snapshots(snapshots, 5)
        gram = basis.modes.T @ basis.modes
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-8)

    def test_svd(self, snapshots):
        basis = pod_svd(snapshots, 5)
        gram = basis.modes.T @ basis.modes
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-10)


class TestEquivalence:
    def test_methods_agree_up_to_sign(self, snapshots):
        a = pod_method_of_snapshots(snapshots, 4)
        b = pod_svd(snapshots, 4)
        np.testing.assert_allclose(a.energies[:4], b.energies[:4],
                                   rtol=1e-8)
        for k in range(4):
            dot = abs(a.modes[:, k] @ b.modes[:, k])
            assert dot == pytest.approx(1.0, abs=1e-6)

    def test_energies_descending(self, snapshots):
        basis = fit_pod(snapshots)
        assert np.all(np.diff(basis.energies) <= 1e-9)

    def test_energies_nonnegative(self, snapshots):
        assert np.all(fit_pod(snapshots).energies >= 0.0)


class TestTruncation:
    def test_requested_modes(self, snapshots):
        assert fit_pod(snapshots, 3).n_modes == 3

    def test_rank_clipping(self, rng):
        # Rank-2 data cannot produce more than 2 meaningful modes.
        u = rng.standard_normal((30, 2))
        c = rng.standard_normal((2, 10))
        basis = fit_pod(u @ c, 8)
        assert basis.n_modes <= 3

    def test_truncate_method(self, snapshots):
        basis = fit_pod(snapshots, 5)
        small = basis.truncate(2)
        assert small.n_modes == 2
        np.testing.assert_allclose(small.modes, basis.modes[:, :2])

    def test_truncate_too_large(self, snapshots):
        with pytest.raises(ValueError):
            fit_pod(snapshots, 3).truncate(4)

    def test_energy_fraction_monotone(self, snapshots):
        basis = fit_pod(snapshots, 5)
        fracs = [basis.energy_fraction(k) for k in range(1, 6)]
        assert all(b >= a for a, b in zip(fracs, fracs[1:]))
        assert fracs[-1] <= 1.0 + 1e-12


class TestDispatchAndValidation:
    def test_unknown_method(self, snapshots):
        with pytest.raises(ValueError, match="unknown POD method"):
            fit_pod(snapshots, 2, method="qr")

    def test_method_dispatch(self, snapshots):
        a = fit_pod(snapshots, 2, method="svd")
        b = pod_svd(snapshots, 2)
        np.testing.assert_allclose(a.modes, b.modes)

    def test_nan_rejected(self):
        bad = np.ones((5, 4))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            fit_pod(bad)

    def test_mean_is_captured(self, snapshots):
        basis = fit_pod(snapshots, 2)
        np.testing.assert_allclose(basis.stats.mean,
                                   snapshots.mean(axis=1))

    def test_dominant_mode_energy(self, snapshots):
        # The sin component has ~9x the variance of the cos one.
        basis = fit_pod(snapshots, 2)
        assert basis.energies[0] > 3.0 * basis.energies[1]
