"""Consistent-hash sharding invariants (repro.serve.hashring).

Three properties the router's cache sharding depends on:

* **stability** — same ring parameters, same assignment, always;
* **minimal disruption** — growing N -> N+1 shards moves only ~1/(N+1)
  of the keys (the whole point of consistent vs modulo hashing);
* **process-independence** — assignments are identical across
  interpreter invocations under different ``PYTHONHASHSEED``s, because
  the ring hashes with SHA-256, never Python ``hash()``.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from repro.serve.hashring import ConsistentHashRing

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

KEYS = [f"key-{i:05d}" for i in range(4000)]


def test_validation():
    with pytest.raises(ValueError, match="n_shards"):
        ConsistentHashRing(0)
    with pytest.raises(ValueError, match="replicas"):
        ConsistentHashRing(2, replicas=0)


def test_assignment_in_range_and_every_shard_used():
    ring = ConsistentHashRing(4)
    owners = {ring.shard_for(k) for k in KEYS}
    assert owners == {0, 1, 2, 3}


def test_stable_under_reconstruction():
    a = ConsistentHashRing(4)
    b = ConsistentHashRing(4)
    assert [a.shard_for(k) for k in KEYS] \
        == [b.shard_for(k) for k in KEYS]


def test_single_shard_owns_everything():
    ring = ConsistentHashRing(1)
    assert {ring.shard_for(k) for k in KEYS} == {0}


@pytest.mark.parametrize("n", [2, 4, 8])
def test_growth_moves_about_one_over_n_plus_one(n):
    """N -> N+1 relocates ~1/(N+1) of keys — far from the ~N/(N+1) a
    modulo scheme would move — and every moved key goes TO the new
    shard (nothing shuffles between old shards)."""
    before = ConsistentHashRing(n)
    after = ConsistentHashRing(n + 1)
    moved = [k for k in KEYS
             if before.shard_for(k) != after.shard_for(k)]
    fraction = len(moved) / len(KEYS)
    ideal = 1.0 / (n + 1)
    # Generous band: replica placement is random-ish, but the fraction
    # must sit near the ideal and nowhere near a full reshuffle.
    assert 0.3 * ideal <= fraction <= 2.5 * ideal, \
        f"N={n}->{n + 1} moved {fraction:.3f} of keys (ideal {ideal:.3f})"
    assert all(after.shard_for(k) == n for k in moved), \
        "keys moved between surviving shards"


def test_balance_is_reasonable():
    """With 64 virtual points per shard no shard hoards the key space."""
    ring = ConsistentHashRing(4)
    counts = [0, 0, 0, 0]
    for key in KEYS:
        counts[ring.shard_for(key)] += 1
    mean = len(KEYS) / 4
    for shard, count in enumerate(counts):
        assert 0.4 * mean <= count <= 1.9 * mean, \
            f"shard {shard} owns {count}/{len(KEYS)} keys: {counts}"


def test_identical_across_processes_and_hash_seeds():
    """The assignment a fresh interpreter computes under a different
    PYTHONHASHSEED is bit-identical — no ``hash()`` anywhere."""
    probe_keys = KEYS[::97]
    local = [ConsistentHashRing(5).shard_for(k) for k in probe_keys]
    script = (
        "from repro.serve.hashring import ConsistentHashRing\n"
        "ring = ConsistentHashRing(5)\n"
        f"keys = {probe_keys!r}\n"
        "print(','.join(str(ring.shard_for(k)) for k in keys))\n")
    for seed in ("0", "12345"):
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True,
            env={"PYTHONPATH": _SRC, "PYTHONHASHSEED": seed})
        remote = [int(s) for s in result.stdout.strip().split(",")]
        assert remote == local, f"divergence under PYTHONHASHSEED={seed}"
