"""The bench regression gate: repro bench --compare OLD.json."""

from __future__ import annotations

import json

import pytest

from repro.bench import compare_bench, load_bench_file
from repro.cli import main


def _entry(mean_s, reps=3):
    return {"mean_s": mean_s, "std_s": 0.0, "reps": reps, "metadata": {}}


class TestCompareBench:
    def test_improvement_and_regression_classified(self):
        old = {"fast": _entry(1.0), "slow": _entry(1.0),
               "same": _entry(1.0)}
        new = {"fast": _entry(0.5), "slow": _entry(1.5),
               "same": _entry(1.05)}
        cmp = compare_bench(old, new)
        assert [r.name for r in cmp.improvements] == ["fast"]
        assert [r.name for r in cmp.regressions] == ["slow"]
        assert not cmp.ok
        table = cmp.table()
        assert "REGRESSED" in table and "improved" in table

    def test_threshold_is_strict(self):
        old = {"a": _entry(1.0)}
        exactly = compare_bench(old, {"a": _entry(1.20)})
        assert exactly.ok  # +20.0% is not > 20%
        over = compare_bench(old, {"a": _entry(1.21)})
        assert not over.ok

    def test_missing_benchmarks_reported_not_failed(self):
        old = {"kept": _entry(1.0), "dropped": _entry(1.0)}
        new = {"kept": _entry(1.0), "added": _entry(1.0)}
        cmp = compare_bench(old, new)
        assert cmp.missing_in_new == ("dropped",)
        assert cmp.only_in_new == ("added",)
        assert cmp.ok
        table = cmp.table()
        assert "missing from new run" in table
        assert "new benchmark (no baseline)" in table

    def test_row_metrics(self):
        cmp = compare_bench({"a": _entry(2.0)}, {"a": _entry(1.0)})
        (row,) = cmp.rows
        assert row.delta == -0.5
        assert row.speedup == 2.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_bench({"a": _entry(1.0)}, {"a": _entry(1.0)},
                          threshold=0.0)

    def test_load_bench_file_validates(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"a": _entry(1.0)}))
        assert "a" in load_bench_file(good)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"a": {"no_mean": 1}}))
        with pytest.raises(ValueError, match="mean_s"):
            load_bench_file(bad)
        nondict = tmp_path / "nondict.json"
        nondict.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_bench_file(nondict)

    @pytest.mark.parametrize("mean_s", [0.0, -1.0, 0, "fast", None, True])
    def test_load_bench_file_rejects_invalid_mean(self, tmp_path, mean_s):
        path = tmp_path / "bad_mean.json"
        path.write_text(json.dumps({"poisoned": _entry(mean_s)}))
        with pytest.raises(ValueError, match="poisoned.*mean_s"):
            load_bench_file(path)

    @pytest.mark.parametrize("literal", ["NaN", "Infinity", "-Infinity"])
    def test_load_bench_file_rejects_nonfinite_mean(self, tmp_path,
                                                    literal):
        # json.load happily parses these literals; the validator must not.
        path = tmp_path / "nonfinite.json"
        path.write_text('{"poisoned": {"mean_s": %s}}' % literal)
        with pytest.raises(ValueError, match="poisoned.*mean_s"):
            load_bench_file(path)

    @pytest.mark.parametrize("old,new", [(0.0, 1.0), (1.0, 0.0)])
    def test_zero_mean_row_raises_value_error_not_zero_division(self, old,
                                                                new):
        # Regression: ComparisonRow.delta/speedup used to raise a bare
        # ZeroDivisionError when either mean was 0.
        with pytest.raises(ValueError, match="mean_s"):
            compare_bench({"a": _entry(old)}, {"a": _entry(new)})


class TestCompareCLI:
    def _run_compare(self, tmp_path, capsys, old_mean):
        old = tmp_path / "old.json"
        old.write_text(json.dumps({"pod_basis": _entry(old_mean),
                                   "retired_bench": _entry(1.0)}))
        code = main(["bench", "--quick", "--reps", "1", "--filter",
                     "pod_basis", "--workers", "0",
                     "--out", str(tmp_path / "new.json"),
                     "--compare", str(old)])
        return code, capsys.readouterr().out

    def test_improvement_exits_zero(self, tmp_path, capsys):
        code, out = self._run_compare(tmp_path, capsys, old_mean=1e6)
        assert code == 0
        assert "improved" in out
        assert "missing from new run" in out  # retired_bench

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        code, out = self._run_compare(tmp_path, capsys, old_mean=1e-9)
        assert code == 1
        assert "REGRESSED" in out

    @pytest.mark.parametrize("payload", [
        {"pod_basis": {"mean_s": 0.0, "std_s": 0.0, "reps": 3,
                       "metadata": {}}},
        {"pod_basis": {"mean_s": float("nan"), "std_s": 0.0, "reps": 3,
                       "metadata": {}}},
    ])
    def test_invalid_baseline_exits_2_before_running(self, tmp_path,
                                                     capsys, payload):
        # A zero/NaN-mean baseline must be refused with a typed error and
        # exit code 2 *before* any benchmark is timed — not crash with a
        # ZeroDivisionError traceback after the run.
        old = tmp_path / "old.json"
        old.write_text(json.dumps(payload))
        out_path = tmp_path / "new.json"
        code = main(["bench", "--quick", "--reps", "1", "--filter",
                     "pod_basis", "--workers", "0",
                     "--out", str(out_path), "--compare", str(old)])
        captured = capsys.readouterr()
        assert code == 2
        assert "--compare baseline rejected" in captured.err
        assert "mean_s" in captured.err
        assert not out_path.exists()  # rejected before the suite ran

    def test_missing_baseline_file_exits_2(self, tmp_path, capsys):
        code = main(["bench", "--quick", "--reps", "1", "--filter",
                     "pod_basis", "--workers", "0",
                     "--out", str(tmp_path / "new.json"),
                     "--compare", str(tmp_path / "nope.json")])
        assert code == 2
        assert "--compare baseline rejected" in capsys.readouterr().err
