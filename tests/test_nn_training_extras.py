"""Trainer extensions: early stopping and learning-rate decay."""

import numpy as np
import pytest

from repro.baselines import build_manual_lstm
from repro.nn.training import Trainer


def toy(rng, n=100):
    x = rng.standard_normal((n, 5, 2))
    return x, 0.3 * np.cumsum(x, axis=1)


class TestEarlyStopping:
    def test_stops_early_on_plateau(self, rng):
        x, y = toy(rng)
        net = build_manual_lstm(6, 1, input_dim=2, output_dim=2, rng=0)
        # Zero learning-rate epochs cannot improve -> patience triggers.
        history = Trainer(epochs=50, batch_size=32, learning_rate=1e-12,
                          patience=3).fit(net, x, y, rng=0)
        assert history.n_epochs <= 5

    def test_restores_best_weights(self, rng):
        x, y = toy(rng)
        net = build_manual_lstm(8, 1, input_dim=2, output_dim=2, rng=0)
        history = Trainer(epochs=25, batch_size=32, learning_rate=0.01,
                          patience=5).fit(net, x[:80], y[:80],
                                          x[80:], y[80:], rng=0)
        from repro.nn.metrics import r2_score
        final_r2 = r2_score(y[80:], net.predict(x[80:]))
        # The restored weights score (at least) the best epoch seen.
        assert final_r2 >= max(history.val_r2) - 1e-9

    def test_runs_full_budget_when_improving(self, rng):
        x, y = toy(rng)
        net = build_manual_lstm(8, 1, input_dim=2, output_dim=2, rng=0)
        history = Trainer(epochs=8, batch_size=32, learning_rate=0.01,
                          patience=8).fit(net, x, y, rng=0)
        assert history.n_epochs == 8

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            Trainer(patience=0)


class TestLRDecay:
    def test_decay_changes_trajectory(self, rng):
        x, y = toy(rng)
        net_a = build_manual_lstm(6, 1, input_dim=2, output_dim=2, rng=0)
        net_b = build_manual_lstm(6, 1, input_dim=2, output_dim=2, rng=0)
        h_a = Trainer(epochs=10, batch_size=32, learning_rate=0.01,
                      lr_decay=1.0).fit(net_a, x, y, rng=0)
        h_b = Trainer(epochs=10, batch_size=32, learning_rate=0.01,
                      lr_decay=0.5).fit(net_b, x, y, rng=0)
        assert h_a.train_loss[-1] != h_b.train_loss[-1]

    def test_strong_decay_freezes_training(self, rng):
        x, y = toy(rng)
        net = build_manual_lstm(6, 1, input_dim=2, output_dim=2, rng=0)
        history = Trainer(epochs=30, batch_size=32, learning_rate=0.01,
                          lr_decay=0.01).fit(net, x, y, rng=0)
        # After a few epochs the LR is ~0; late losses barely move.
        late = history.train_loss[10:]
        assert max(late) - min(late) < 0.05 * history.train_loss[0]

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            Trainer(lr_decay=0.0)
        with pytest.raises(ValueError):
            Trainer(lr_decay=1.5)
