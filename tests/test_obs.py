"""Observability layer (repro.obs): timer arithmetic, counters, JSONL
round-trip, registry isolation, and the zero-behaviour-change guard.

The guard test is the load-bearing one: every instrumented hot path
(Trainer, evaluators, executors, layers) must produce bitwise-identical
numerics whether the registry is enabled, disabled, or the code had
never been instrumented at all — observability may only ever *read*
the computation.
"""

import io
import json

import numpy as np
import pytest

from repro import obs
from repro.baselines import build_manual_lstm
from repro.nn import Trainer
from repro.obs import Registry


def fake_clock_registry():
    """Registry on a manually advanced clock; returns (registry, tick)."""
    t = [0.0]
    registry = Registry(clock=lambda: t[0])
    registry.enabled = True

    def tick(seconds):
        t[0] += seconds
    return registry, tick


class TestScopeArithmetic:
    def test_single_scope(self):
        reg, tick = fake_clock_registry()
        with reg.scope("work"):
            tick(2.0)
        stats = reg.scopes["work"]
        assert stats.n_calls == 1
        assert stats.total_s == pytest.approx(2.0)
        assert stats.self_s == pytest.approx(2.0)
        assert stats.min_s == stats.max_s == pytest.approx(2.0)

    def test_nested_exclusive_time(self):
        reg, tick = fake_clock_registry()
        with reg.scope("outer"):
            tick(1.0)
            with reg.scope("inner"):
                tick(2.0)
            tick(0.5)
        outer, inner = reg.scopes["outer"], reg.scopes["outer/inner"]
        assert outer.total_s == pytest.approx(3.5)
        assert outer.self_s == pytest.approx(1.5)   # 3.5 - nested 2.0
        assert inner.total_s == pytest.approx(2.0)
        assert inner.self_s == pytest.approx(2.0)

    def test_sibling_scopes_both_subtract_from_parent(self):
        reg, tick = fake_clock_registry()
        with reg.scope("p"):
            with reg.scope("a"):
                tick(1.0)
            with reg.scope("b"):
                tick(2.0)
        assert reg.scopes["p"].total_s == pytest.approx(3.0)
        assert reg.scopes["p"].self_s == pytest.approx(0.0)

    def test_repeated_calls_aggregate_by_path(self):
        reg, tick = fake_clock_registry()
        for dt in (1.0, 3.0):
            with reg.scope("epoch"):
                tick(dt)
        stats = reg.scopes["epoch"]
        assert stats.n_calls == 2
        assert stats.total_s == pytest.approx(4.0)
        assert stats.mean_s == pytest.approx(2.0)
        assert stats.min_s == pytest.approx(1.0)
        assert stats.max_s == pytest.approx(3.0)

    def test_recursion_aggregates_on_distinct_paths(self):
        reg, tick = fake_clock_registry()
        with reg.scope("f"):
            tick(1.0)
            with reg.scope("f"):
                tick(1.0)
        assert reg.scopes["f"].total_s == pytest.approx(2.0)
        assert reg.scopes["f"].self_s == pytest.approx(1.0)
        assert reg.scopes["f/f"].total_s == pytest.approx(1.0)

    def test_elapsed_exposed_and_exception_safe(self):
        reg, tick = fake_clock_registry()
        scope = reg.scope("risky")
        with pytest.raises(RuntimeError):
            with scope:
                tick(1.5)
                raise RuntimeError("boom")
        assert scope.elapsed_s == pytest.approx(1.5)
        assert reg.scopes["risky"].n_calls == 1
        # The frame stack unwound: a new top-level scope is not nested.
        with reg.scope("after"):
            tick(1.0)
        assert "after" in reg.scopes

    def test_timed_decorator(self):
        reg = obs.get_registry()
        obs.enable()

        @obs.timed("mod/fn")
        def fn(x):
            return x + 1

        assert fn(1) == 2
        assert reg.scopes["mod/fn"].n_calls == 1
        obs.disable()
        assert fn(2) == 3
        assert reg.scopes["mod/fn"].n_calls == 1  # disabled: not recorded


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        reg, _ = fake_clock_registry()
        reg.counter_add("examples", 64)
        reg.counter_add("examples", 36)
        counter = reg.counters["examples"]
        assert counter.value == pytest.approx(100.0)
        assert counter.n_updates == 2

    def test_counter_rejects_decrease(self):
        reg, _ = fake_clock_registry()
        reg.counter_add("c", 1)
        with pytest.raises(ValueError, match="decrease"):
            reg.counters["c"].add(-1)

    def test_gauge_tracks_extremes_and_mean(self):
        reg, _ = fake_clock_registry()
        for v in (2.0, 6.0, 4.0):
            reg.gauge_set("rate", v)
        gauge = reg.gauges["rate"]
        assert gauge.last == 4.0
        assert gauge.min == 2.0
        assert gauge.max == 6.0
        assert gauge.mean == pytest.approx(4.0)

    def test_disabled_registry_records_nothing(self):
        reg = Registry()
        assert not reg.enabled
        with reg.scope("x"):
            pass
        reg.counter_add("c", 5)
        reg.gauge_set("g", 1.0)
        assert not reg.scopes and not reg.counters and not reg.gauges


class TestThreadSafety:
    """Registry mutations under real thread contention (the serving
    engine updates counters/gauges from worker and client threads)."""

    def test_concurrent_increments_lose_no_updates(self):
        import threading
        reg = Registry()
        reg.enabled = True
        n_threads, n_increments = 8, 5000
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(n_increments):
                reg.counter_add("t/counter")
                reg.gauge_set("t/gauge", 1.0)

        threads = [threading.Thread(target=work)
                   for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = n_threads * n_increments
        assert reg.counters["t/counter"].value == expected
        assert reg.counters["t/counter"].n_updates == expected
        assert reg.gauges["t/gauge"].n_updates == expected

    def test_scopes_nest_per_thread(self):
        import threading
        reg = Registry()
        reg.enabled = True
        n_threads, n_calls = 4, 50
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(n_calls):
                with reg.scope("outer"):
                    with reg.scope("inner"):
                        pass

        threads = [threading.Thread(target=work)
                   for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Scope paths never interleave across threads: exactly the two
        # expected paths exist, with every call accounted for.
        assert sorted(reg.scopes) == ["outer", "outer/inner"]
        assert reg.scopes["outer"].n_calls == n_threads * n_calls
        assert reg.scopes["outer/inner"].n_calls == n_threads * n_calls


class TestExport:
    def _populated(self):
        reg, tick = fake_clock_registry()
        with reg.scope("a"):
            tick(1.0)
            with reg.scope("b"):
                tick(2.0)
        reg.counter_add("count", 7)
        reg.gauge_set("gauge", 3.5)
        return reg

    def test_jsonl_round_trip(self, tmp_path):
        reg = self._populated()
        path = tmp_path / "run.obs.jsonl"
        reg.export_jsonl(path)
        loaded = Registry.load_jsonl(path)
        assert loaded.as_records() == reg.as_records()

    def test_jsonl_records_are_typed(self):
        reg = self._populated()
        buf = io.StringIO()
        reg.export_jsonl(buf)
        kinds = [json.loads(line)["kind"]
                 for line in buf.getvalue().splitlines()]
        assert sorted(set(kinds)) == ["counter", "gauge", "scope"]

    def test_load_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown record kind"):
            Registry.load_jsonl(io.StringIO('{"kind": "wat", "name": "x"}\n'))

    def test_summary_mentions_every_record(self):
        reg = self._populated()
        text = obs.summary_table(reg)
        for name in ("a", "a/b", "count", "gauge"):
            assert name in text
        assert obs.summary_table(Registry()) == "(registry is empty)"


class TestGlobalRegistryLifecycle:
    def test_default_disabled(self):
        # The autouse fixture restores this; the default must be off.
        assert not obs.enabled()
        assert obs.scope("x") is obs.NULL_SCOPE

    def test_reset_clears_data_not_flag(self):
        obs.enable()
        obs.counter_add("c")
        obs.reset()
        assert obs.enabled()
        assert not obs.get_registry().counters

    def test_isolation_fixture_leaves_no_state(self):
        # Whatever earlier tests recorded, this test starts clean.
        reg = obs.get_registry()
        assert not reg.scopes and not reg.counters and not reg.gauges


class TestZeroBehaviourChangeGuard:
    """With observability disabled (the default), instrumented paths are
    bitwise-identical to the uninstrumented computation."""

    def _train(self):
        rng = np.random.default_rng(42)
        x = rng.standard_normal((48, 6, 2))
        y = 0.3 * np.cumsum(x, axis=1)
        net = build_manual_lstm(8, 1, input_dim=2, output_dim=2, rng=3)
        trainer = Trainer(epochs=3, batch_size=16, lr_decay=0.5,
                          patience=2)
        history = trainer.fit(net, x[:32], y[:32], x[32:], y[32:], rng=7)
        return net.get_weights(), history

    def test_disabled_and_enabled_runs_are_bitwise_identical(self):
        obs.disable()
        weights_off, history_off = self._train()

        obs.enable()
        weights_on, history_on = self._train()
        obs.disable()

        for w_off, w_on in zip(weights_off, weights_on, strict=True):
            np.testing.assert_array_equal(w_off, w_on)
        assert history_off.train_loss == history_on.train_loss
        assert history_off.val_loss == history_on.val_loss
        assert history_off.val_r2 == history_on.val_r2
        assert history_off.learning_rates == history_on.learning_rates

        # The enabled run actually observed the training it didn't perturb.
        reg = obs.get_registry()
        assert reg.scopes["train/epoch"].n_calls == 3
        assert reg.counters["train/examples"].value == 3 * 32
        # The recurrent hot path counts its GEMMs under nn/fused_gemms
        # (nn/gemms when the reference kernels are selected instead).
        gemms = sum(c.value for name, c in reg.counters.items()
                    if name in ("nn/gemms", "nn/fused_gemms"))
        assert gemms > 0

    def test_instrumented_trainer_is_reproducible_when_disabled(self):
        weights_a, history_a = self._train()
        weights_b, history_b = self._train()
        for wa, wb in zip(weights_a, weights_b, strict=True):
            np.testing.assert_array_equal(wa, wb)
        assert history_a.train_loss == history_b.train_loss
