import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_every_paper_artifact_has_an_entry(self):
        assert set(EXPERIMENTS) == {"fig3", "fig4", "fig5", "fig6", "fig7",
                                    "fig8", "fig9", "table1", "table2",
                                    "table3"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_help_documents_bench_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "bench" in out
        assert "BENCH_core.json" in out

    def test_bench_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--quick", "--reps", "--out", "--filter", "--obs"):
            assert flag in out

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--preset", "huge"])

    def test_runs_an_experiment(self, capsys):
        # fig4 is the lightest driver (search over the surrogate only).
        assert main(["fig4", "--preset", "quick"]) == 0
        out = capsys.readouterr().out
        assert "best AE-discovered architecture" in out
        assert "layer ops" in out


class TestServeCLI:
    def test_help_documents_serve_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--registry", "--train-demo", "--promote",
                     "--loadgen", "--report", "--max-batch"):
            assert flag in out

    def test_train_demo_status_loadgen_round_trip(self, tmp_path,
                                                  capsys):
        """The CI serve-smoke sequence: train a tiny demo emulator,
        publish + promote it, run a short load burst, and check the
        SLO report file validates against the schema."""
        import json

        from repro.serve import validate_slo_report

        registry = str(tmp_path / "reg")
        report = tmp_path / "slo.json"
        assert main(["serve", "--registry", registry,
                     "--train-demo", "demo"]) == 0
        assert main(["serve", "--registry", registry, "--status"]) == 0
        assert "demo *active*" in capsys.readouterr().out
        assert main(["serve", "--registry", registry, "--loadgen",
                     "--clients", "2", "--requests", "6",
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "SLO report" in out
        with open(report, encoding="utf-8") as fh:
            data = json.load(fh)
        validate_slo_report(data)
        assert data["n_requests"] == 12

    def test_loadgen_without_active_version_fails(self, tmp_path):
        with pytest.raises(ValueError, match="no active version"):
            main(["serve", "--registry", str(tmp_path / "empty"),
                  "--loadgen"])

    def test_router_loadgen_round_trip(self, tmp_path, capsys):
        """The CI router-smoke sequence: train-demo, then a short load
        burst through the sharded multi-process router; the report must
        validate and carry the router's shard statistics."""
        import json

        from repro.serve import validate_slo_report

        registry = str(tmp_path / "reg")
        report = tmp_path / "router-slo.json"
        assert main(["serve", "--registry", registry,
                     "--train-demo", "demo"]) == 0
        capsys.readouterr()
        assert main(["serve", "--registry", registry, "--router",
                     "--workers", "2", "--loadgen",
                     "--clients", "2", "--requests", "5",
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "router serving version 'demo'" in out
        assert "SLO report" in out
        with open(report, encoding="utf-8") as fh:
            data = json.load(fh)
        validate_slo_report(data)
        assert data["n_requests"] == 10
        assert data["n_errors"] == 0
        assert data["engine"]["n_workers"] == 2
        assert {s["generation"] for s in data["engine"]["shards"]} \
            == {1}

    def test_bad_arguments_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serve", "--registry", str(tmp_path / "r"),
                  "--clients", "0", "--loadgen"])
        with pytest.raises(SystemExit):
            main(["serve", "--registry", str(tmp_path / "r"),
                  "--client-processes", "--loadgen"])
