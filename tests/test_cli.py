import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_every_paper_artifact_has_an_entry(self):
        assert set(EXPERIMENTS) == {"fig3", "fig4", "fig5", "fig6", "fig7",
                                    "fig8", "fig9", "table1", "table2",
                                    "table3"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_help_documents_bench_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "bench" in out
        assert "BENCH_core.json" in out

    def test_bench_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--quick", "--reps", "--out", "--filter", "--obs"):
            assert flag in out

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--preset", "huge"])

    def test_runs_an_experiment(self, capsys):
        # fig4 is the lightest driver (search over the surrogate only).
        assert main(["fig4", "--preset", "quick"]) == 0
        out = capsys.readouterr().out
        assert "best AE-discovered architecture" in out
        assert "layer ops" in out
