import numpy as np
import pytest

from repro.data.grid import EASTERN_PACIFIC, LatLonGrid, Region


class TestLatLonGrid:
    def test_noaa_shape(self):
        grid = LatLonGrid(degrees=1.0)
        assert grid.shape == (180, 360)
        assert grid.n_cells == 64800

    def test_coarse_shape(self):
        assert LatLonGrid(degrees=4.0).shape == (45, 90)

    def test_invalid_degrees(self):
        with pytest.raises(ValueError):
            LatLonGrid(degrees=7.0)  # does not divide 180

    def test_nonpositive_degrees(self):
        with pytest.raises(ValueError):
            LatLonGrid(degrees=0.0)

    def test_lat_centers(self):
        lats = LatLonGrid(degrees=1.0).lats
        assert lats[0] == -89.5
        assert lats[-1] == 89.5
        assert np.allclose(np.diff(lats), 1.0)

    def test_lon_centers(self):
        lons = LatLonGrid(degrees=1.0).lons
        assert lons[0] == 0.5
        assert lons[-1] == 359.5

    def test_mesh_shapes(self):
        grid = LatLonGrid(degrees=12.0)
        lat2d, lon2d = grid.mesh()
        assert lat2d.shape == grid.shape
        assert lon2d.shape == grid.shape
        # latitude varies along axis 0 only
        assert np.allclose(lat2d[:, 0], lat2d[:, -1])
        assert np.allclose(lon2d[0, :], lon2d[-1, :])

    def test_nearest_index_center(self):
        grid = LatLonGrid(degrees=1.0)
        i, j = grid.nearest_index(0.5, 200.5)
        assert grid.lats[i] == 0.5
        assert grid.lons[j] == 200.5

    def test_nearest_index_wraps_longitude(self):
        grid = LatLonGrid(degrees=1.0)
        i1, j1 = grid.nearest_index(10.0, 365.0)
        i2, j2 = grid.nearest_index(10.0, 5.0)
        assert (i1, j1) == (i2, j2)

    def test_nearest_index_pole_clamped(self):
        grid = LatLonGrid(degrees=1.0)
        i, _ = grid.nearest_index(90.0, 0.0)
        assert i == grid.n_lat - 1

    def test_nearest_index_invalid_lat(self):
        with pytest.raises(ValueError):
            LatLonGrid().nearest_index(91.0, 0.0)


class TestRegion:
    def test_eastern_pacific_definition(self):
        # The paper's assessment box.
        assert EASTERN_PACIFIC.lat_min == -10.0
        assert EASTERN_PACIFIC.lat_max == 10.0
        assert EASTERN_PACIFIC.lon_min == 200.0
        assert EASTERN_PACIFIC.lon_max == 250.0

    def test_mask_shape_and_counts(self):
        grid = LatLonGrid(degrees=1.0)
        mask = EASTERN_PACIFIC.mask(grid)
        assert mask.shape == grid.shape
        # 20 degrees of latitude x 50 of longitude at 1 degree.
        assert mask.sum() == 20 * 50

    def test_mask_contains_center(self):
        grid = LatLonGrid(degrees=1.0)
        i, j = grid.nearest_index(0.0, 225.0)
        assert EASTERN_PACIFIC.mask(grid)[i, j]

    def test_mask_excludes_outside(self):
        grid = LatLonGrid(degrees=1.0)
        i, j = grid.nearest_index(40.0, 225.0)
        assert not EASTERN_PACIFIC.mask(grid)[i, j]

    def test_invalid_region(self):
        with pytest.raises(ValueError):
            Region(lat_min=10, lat_max=-10, lon_min=0, lon_max=10)
        with pytest.raises(ValueError):
            Region(lat_min=-10, lat_max=10, lon_min=20, lon_max=10)
