import numpy as np
import pytest

from repro.hpc.tracking import EvaluationRecord, SearchTracker


def record(arch, reward, start, end, node=0, params=100):
    return EvaluationRecord(architecture=tuple(arch), reward=reward,
                            start_time=start, end_time=end, node=node,
                            n_parameters=params)


class TestUtilization:
    def test_fully_busy(self):
        tr = SearchTracker(n_nodes=2, wall_seconds=100.0)
        for node in range(2):
            tr.node_busy(0.0)
            tr.node_idle(100.0)
        assert tr.node_utilization() == pytest.approx(1.0)

    def test_half_busy(self):
        tr = SearchTracker(n_nodes=1, wall_seconds=100.0)
        tr.node_busy(0.0)
        tr.node_idle(50.0)
        assert tr.node_utilization() == pytest.approx(0.5)

    def test_idle_forever(self):
        tr = SearchTracker(n_nodes=4, wall_seconds=10.0)
        assert tr.node_utilization() == 0.0

    def test_busy_past_wall_clipped(self):
        tr = SearchTracker(n_nodes=1, wall_seconds=100.0)
        tr.node_busy(90.0)
        tr.node_idle(500.0)  # evaluation would finish after the wall
        assert tr.node_utilization() == pytest.approx(0.1)

    def test_overlapping_nodes(self):
        tr = SearchTracker(n_nodes=2, wall_seconds=10.0)
        tr.node_busy(0.0)
        tr.node_busy(5.0)
        tr.node_idle(10.0)
        tr.node_idle(10.0)
        assert tr.node_utilization() == pytest.approx(0.75)

    def test_busy_curve_step_values(self):
        tr = SearchTracker(n_nodes=2, wall_seconds=10.0)
        tr.node_busy(2.0)
        tr.node_busy(4.0)
        tr.node_idle(6.0)
        times, counts = tr.busy_curve()
        lookup = dict(zip(times.tolist(), counts.tolist()))
        assert lookup[2.0] == 1
        assert lookup[4.0] == 2
        assert lookup[6.0] == 1


class TestTrajectories:
    def test_reward_trajectory_sorted_and_smoothed(self):
        tr = SearchTracker(n_nodes=1, wall_seconds=100.0)
        tr.record_evaluation(record((2,), 0.4, 10, 30))
        tr.record_evaluation(record((1,), 0.2, 0, 20))
        times, rewards = tr.reward_trajectory(window=100)
        np.testing.assert_allclose(times, [20.0, 30.0])
        np.testing.assert_allclose(rewards, [0.2, 0.3])

    def test_best_reward_curve(self):
        tr = SearchTracker(n_nodes=1, wall_seconds=100.0)
        for i, r in enumerate([0.3, 0.5, 0.2, 0.6]):
            tr.record_evaluation(record((i,), r, i, i + 1))
        _, best = tr.best_reward_curve()
        np.testing.assert_allclose(best, [0.3, 0.5, 0.5, 0.6])

    def test_empty_trajectory(self):
        tr = SearchTracker(n_nodes=1, wall_seconds=10.0)
        times, rewards = tr.reward_trajectory()
        assert times.size == 0 and rewards.size == 0


class TestHighPerformers:
    def test_unique_counting(self):
        tr = SearchTracker(n_nodes=1, wall_seconds=100.0)
        tr.record_evaluation(record((1,), 0.97, 0, 1))
        tr.record_evaluation(record((1,), 0.98, 1, 2))   # duplicate arch
        tr.record_evaluation(record((2,), 0.99, 2, 3))
        tr.record_evaluation(record((3,), 0.90, 3, 4))   # below threshold
        assert tr.n_unique_high_performers(0.96) == 2

    def test_cumulative_curve(self):
        tr = SearchTracker(n_nodes=1, wall_seconds=100.0)
        tr.record_evaluation(record((1,), 0.97, 0, 1))
        tr.record_evaluation(record((2,), 0.99, 2, 3))
        times, counts = tr.unique_high_performers(0.96)
        np.testing.assert_allclose(times, [1.0, 3.0])
        np.testing.assert_allclose(counts, [1, 2])

    def test_threshold_sensitivity(self):
        tr = SearchTracker(n_nodes=1, wall_seconds=100.0)
        tr.record_evaluation(record((1,), 0.95, 0, 1))
        assert tr.n_unique_high_performers(0.96) == 0
        assert tr.n_unique_high_performers(0.90) == 1


class TestDurations:
    def test_mean_evaluation_seconds(self):
        tr = SearchTracker(n_nodes=1, wall_seconds=100.0)
        tr.record_evaluation(record((1,), 0.9, 0, 10))
        tr.record_evaluation(record((2,), 0.9, 0, 30))
        assert tr.mean_evaluation_seconds() == pytest.approx(20.0)

    def test_mean_of_empty_is_nan(self):
        tr = SearchTracker(n_nodes=1, wall_seconds=100.0)
        assert np.isnan(tr.mean_evaluation_seconds())

    def test_record_duration(self):
        assert record((1,), 0.5, 3.0, 7.5).duration == 4.5
