"""The tabular NAS benchmark backend (docs/NAS_BENCHMARK.md).

Headline contract, tested differentially: a search campaign evaluated
from a benchmark archive is **bitwise identical** (``==`` on floats,
never approximate) in its ask/tell trajectory to the same campaign paying
per-candidate surrogate training — for every algorithm (ae/rs/rl), in
both in-loop and backend evaluation modes — whenever every asked
architecture is in the table. Plus: archive round-trip fidelity,
header/version/digest validation, deterministic surrogate fallback for
off-table points, obs hit/miss counters, campaign-checkpoint identity
pinning, and the multi-seed sweep report schema.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro import obs
from repro.hpc import (
    ParallelEvaluator,
    SerialEvaluator,
    ThetaPartition,
    resume_search,
    run_search,
)
from repro.nas import (
    AgingEvolution,
    ArchitecturePerformanceModel,
    BenchmarkEvaluator,
    CheckpointPolicy,
    DistributedRL,
    RandomSearch,
    SurrogateEvaluator,
    build_archive,
    load_archive,
    read_archive_header,
    run_benchmark_campaign,
    run_seed_sweep,
    validate_sweep_report,
)
from repro.nas.benchmark import ARCHIVE_FORMAT, ARCHIVE_VERSION
from repro.serve.artifact import write_npz_artifact


@pytest.fixture(scope="module")
def model(small_space):
    return ArchitecturePerformanceModel(small_space, seed=0)


@pytest.fixture(scope="module")
def archive_path(small_space, model, tmp_path_factory):
    """Exhaustive archive of the whole 512-architecture small space."""
    path = tmp_path_factory.mktemp("nasb") / "exhaustive.npz"
    return build_archive(small_space, model, path,
                         metadata={"purpose": "tests"})


@pytest.fixture(scope="module")
def archive(archive_path):
    return load_archive(archive_path)


@pytest.fixture()
def evaluator(archive):
    return BenchmarkEvaluator(archive)


# ---------------------------------------------------------------------------
# Archive build / round-trip
# ---------------------------------------------------------------------------

class TestArchiveRoundTrip:
    def test_exhaustive_build_covers_the_space(self, small_space, archive):
        assert archive.n_records == small_space.size
        ranks = sorted(small_space.index_of(tuple(row))
                       for row in archive.encodings)
        assert ranks == list(range(small_space.size))

    def test_records_are_the_models_noise_free_truth(self, small_space,
                                                     model, archive):
        for i in (0, 17, 255, 511):
            arch = tuple(int(v) for v in archive.encodings[i])
            assert archive.rewards[i] == model.quality(arch, 20)
            assert archive.costs[i] == model.training_seconds(arch,
                                                              rng=None)

    def test_final_curve_point_equals_reward(self, archive):
        assert archive.curves.shape == (archive.n_records, archive.epochs)
        np.testing.assert_array_equal(archive.curves[:, -1],
                                      archive.rewards)

    def test_curve_lookup_by_architecture(self, small_space, model,
                                          archive):
        arch = small_space.from_index(42)
        curve = archive.curve(arch)
        assert curve[4] == model.quality(arch, 5)
        with pytest.raises(KeyError):
            archive.curve((9, 9, 9, 9, 9, 9))  # raises in validate-free path

    def test_space_round_trips_through_header(self, small_space, archive):
        assert archive.space.cardinalities == small_space.cardinalities
        assert archive.space.operations == small_space.operations
        assert archive.space.input_dim == small_space.input_dim

    def test_header_readable_without_loading(self, archive_path, archive):
        header = read_archive_header(archive_path)
        assert header["format"] == ARCHIVE_FORMAT
        assert header["version"] == ARCHIVE_VERSION
        assert header["n_records"] == 512
        assert header["digest"] == archive.digest
        assert header["metadata"] == {"purpose": "tests"}

    def test_sampled_build_records_distinct_architectures(self,
                                                          small_space,
                                                          model, tmp_path):
        path = build_archive(small_space, model, tmp_path / "s.npz",
                             n_samples=50, rng=3)
        arc = load_archive(path)
        assert arc.n_records == 50
        assert len({tuple(r) for r in arc.encodings.tolist()}) == 50

    def test_build_rejects_bad_arguments(self, small_space, model,
                                         tmp_path):
        with pytest.raises(ValueError, match="n_samples"):
            build_archive(small_space, model, tmp_path / "x.npz",
                          n_samples=small_space.size + 1)
        with pytest.raises(ValueError, match="not both"):
            build_archive(small_space, model, tmp_path / "x.npz",
                          architectures=[small_space.from_index(0)],
                          n_samples=3)
        with pytest.raises(ValueError, match="epochs"):
            build_archive(small_space, model, tmp_path / "x.npz", epochs=0)
        with pytest.raises(TypeError, match="model"):
            build_archive(small_space, object(), tmp_path / "x.npz")

    def test_exhaustive_build_refuses_huge_spaces(self, tmp_path):
        from repro.nas import StackedLSTMSpace
        paper = StackedLSTMSpace()  # 8.6M architectures
        with pytest.raises(ValueError, match="capped"):
            build_archive(paper, ArchitecturePerformanceModel(paper),
                          tmp_path / "huge.npz")


class TestArchiveValidation:
    def test_rejects_foreign_format(self, tmp_path):
        path = write_npz_artifact(
            tmp_path / "alien.npz", {"format": "something-else",
                                     "version": 1},
            {"arch": np.zeros((1, 1))}, key="__benchmark__")
        with pytest.raises(ValueError, match="not a NAS benchmark"):
            read_archive_header(path)

    def test_rejects_newer_schema_version(self, archive_path, tmp_path,
                                          small_space):
        header = read_archive_header(archive_path)
        header["version"] = ARCHIVE_VERSION + 1
        with np.load(archive_path) as npz:
            arrays = {n: npz[n] for n in npz.files
                      if n != "__benchmark__"}
        path = write_npz_artifact(tmp_path / "future.npz", header, arrays,
                                  key="__benchmark__")
        with pytest.raises(ValueError, match="schema version"):
            load_archive(path)

    def test_rejects_missing_header(self, tmp_path):
        np.savez(tmp_path / "bare.npz", arch=np.zeros((1, 1)))
        with pytest.raises(ValueError, match="missing __benchmark__"):
            read_archive_header(tmp_path / "bare.npz")

    def test_rejects_tampered_records(self, archive_path, tmp_path):
        header = read_archive_header(archive_path)
        with np.load(archive_path) as npz:
            arrays = {n: npz[n] for n in npz.files
                      if n != "__benchmark__"}
        arrays["reward"] = arrays["reward"].copy()
        arrays["reward"][0] += 0.5  # flip a reward, keep the old digest
        path = write_npz_artifact(tmp_path / "tampered.npz", header,
                                  arrays, key="__benchmark__")
        with pytest.raises(ValueError, match="digest mismatch"):
            load_archive(path)

    def test_rejects_missing_arrays(self, archive_path, tmp_path):
        header = read_archive_header(archive_path)
        path = write_npz_artifact(tmp_path / "empty.npz", header, {},
                                  key="__benchmark__")
        with pytest.raises(ValueError, match="lacks arrays"):
            load_archive(path)


# ---------------------------------------------------------------------------
# Differential: table-backed campaign == surrogate campaign, bitwise
# ---------------------------------------------------------------------------

PARTITION = ThetaPartition(n_nodes=6, wall_seconds=1500.0)
RL_PARTITION = ThetaPartition(n_nodes=8, wall_seconds=1200.0)


def _make_algorithm(name, space):
    if name == "rs":
        return RandomSearch(space, rng=0), PARTITION
    if name == "ae":
        return AgingEvolution(space, rng=3, population_size=8,
                              sample_size=3), PARTITION
    return DistributedRL(space, rng=0, n_agents=2,
                         workers_per_agent=3), RL_PARTITION


def _fingerprint(tracker):
    return [(r.architecture, r.reward, r.start_time, r.end_time, r.node,
             r.n_parameters) for r in tracker.records]


def _run_campaign(space, evaluator, name, workers):
    algorithm, partition = _make_algorithm(name, space)
    if workers == "in-loop":
        return run_search(algorithm, evaluator, partition, rng=5)
    backend = SerialEvaluator(evaluator) if workers == 0 \
        else ParallelEvaluator(evaluator, n_workers=workers)
    with backend:
        return run_search(algorithm, evaluator, partition, rng=5,
                          backend=backend)


@pytest.mark.parametrize("algorithm", ["ae", "rs", "rl"])
@pytest.mark.parametrize("workers", ["in-loop", 0, 2])
class TestBitwiseEquivalence:
    """For in-table asks the archive replays the surrogate path exactly:
    the full recorded trajectory must be ``==``, never approximate."""

    def test_table_campaign_matches_surrogate_campaign(
            self, small_space, model, archive, algorithm, workers):
        surrogate = _fingerprint(_run_campaign(
            small_space, SurrogateEvaluator(small_space, model),
            algorithm, workers))
        assert surrogate, "surrogate reference recorded nothing"
        table = _fingerprint(_run_campaign(
            small_space, BenchmarkEvaluator(archive), algorithm, workers))
        assert table == surrogate


class TestEvaluatorSemantics:
    def test_in_table_metadata_and_counters(self, small_space, evaluator):
        obs.enable()
        result = evaluator.evaluate(small_space.from_index(7),
                                    np.random.default_rng(0))
        assert result.metadata["fidelity"] == "benchmark"
        assert result.metadata["source"] == "table"
        counters = obs.get_registry().counters
        assert counters["nas/benchmark/table_hit"].value == 1
        assert "nas/benchmark/surrogate_miss" not in counters

    def test_reward_noise_comes_from_the_caller_stream(self, small_space,
                                                       evaluator):
        arch = small_space.from_index(12)
        a = evaluator.evaluate(arch, np.random.default_rng(1))
        b = evaluator.evaluate(arch, np.random.default_rng(1))
        c = evaluator.evaluate(arch, np.random.default_rng(2))
        assert a.reward == b.reward and a.duration == b.duration
        assert a.reward != c.reward

    def test_n_parameters_matches_the_space(self, small_space, evaluator):
        arch = small_space.from_index(200)
        result = evaluator.evaluate(arch, np.random.default_rng(0))
        assert result.n_parameters == small_space.count_parameters(arch)

    def test_evaluator_is_picklable(self, small_space, evaluator):
        clone = pickle.loads(pickle.dumps(evaluator))
        arch = small_space.from_index(99)
        assert clone.evaluate(arch, np.random.default_rng(5)).reward == \
            evaluator.evaluate(arch, np.random.default_rng(5)).reward

    def test_constructor_rejects_bad_options(self, archive):
        with pytest.raises(ValueError, match="surrogate"):
            BenchmarkEvaluator(archive, surrogate="forest")
        with pytest.raises(ValueError, match="ridge_lambda"):
            BenchmarkEvaluator(archive, ridge_lambda=0.0)
        with pytest.raises(ValueError, match="knn_k"):
            BenchmarkEvaluator(archive, knn_k=0)


class TestSurrogateFallback:
    @pytest.fixture(scope="class")
    def partial_path(self, small_space, model, tmp_path_factory):
        path = tmp_path_factory.mktemp("nasb-partial") / "partial.npz"
        return build_archive(small_space, model, path, n_samples=64,
                             rng=11)

    @pytest.mark.parametrize("surrogate", ["ridge", "knn"])
    def test_off_table_predictions_are_deterministic(self, small_space,
                                                     partial_path,
                                                     surrogate):
        ev_a = BenchmarkEvaluator(partial_path, surrogate=surrogate)
        ev_b = BenchmarkEvaluator(partial_path, surrogate=surrogate)
        in_table = {tuple(int(v) for v in row)
                    for row in load_archive(partial_path).encodings}
        seen_miss = 0
        for rank in range(0, 512, 17):
            arch = small_space.from_index(rank)
            a = ev_a.evaluate(arch, np.random.default_rng(rank))
            b = ev_b.evaluate(arch, np.random.default_rng(rank))
            assert a.reward == b.reward and a.duration == b.duration
            expected = "table" if arch in in_table else "surrogate"
            assert a.metadata["source"] == expected
            seen_miss += expected == "surrogate"
        assert seen_miss > 0, "no off-table architecture exercised"

    def test_miss_counter_increments(self, small_space, partial_path):
        obs.enable()
        ev = BenchmarkEvaluator(partial_path)
        in_table = {tuple(int(v) for v in row)
                    for row in load_archive(partial_path).encodings}
        off = next(small_space.from_index(r) for r in range(512)
                   if small_space.from_index(r) not in in_table)
        ev.evaluate(off, np.random.default_rng(0))
        counters = obs.get_registry().counters
        assert counters["nas/benchmark/surrogate_miss"].value == 1

    def test_ridge_recovers_table_points_on_linear_landscape(
            self, small_space, tmp_path):
        # A purely linear-in-choices reward is in the ridge model class:
        # predictions at *archived* points must match to ridge precision.
        rng = np.random.default_rng(0)
        weights = [rng.normal(size=c) for c in small_space.cardinalities]
        archs = [small_space.from_index(r) for r in range(0, 512, 7)]

        class _LinearModel(ArchitecturePerformanceModel):
            def quality(inner, arch, epochs=20):
                return float(sum(w[v] for w, v in zip(weights, arch)))

        path = build_archive(small_space, _LinearModel(small_space),
                             tmp_path / "lin.npz", architectures=archs)
        ev = BenchmarkEvaluator(path, ridge_lambda=1e-10)
        probe = archs[3]
        quality, _ = ev._predict(probe)
        assert quality == pytest.approx(
            sum(w[v] for w, v in zip(weights, probe)), abs=1e-6)


# ---------------------------------------------------------------------------
# Campaign checkpointing: the archive digest pins the resume
# ---------------------------------------------------------------------------

class TestCheckpointIdentity:
    def _checkpoint(self, small_space, evaluator, tmp_path):
        algorithm = RandomSearch(small_space, rng=7)
        ckpt = tmp_path / "campaign.json"
        run_search(algorithm, evaluator, PARTITION, rng=9, walltime=400.0,
                   checkpoint=CheckpointPolicy(ckpt))
        return ckpt

    def test_payload_records_the_archive_digest(self, small_space,
                                                archive, evaluator,
                                                tmp_path):
        ckpt = self._checkpoint(small_space, evaluator, tmp_path)
        state = json.loads(ckpt.read_text())
        assert state["evaluator"] == {
            "kind": "nas-benchmark", "digest": archive.digest,
            "epochs": 20, "surrogate": "ridge"}

    def test_resume_with_same_archive_continues(self, small_space,
                                                archive, evaluator,
                                                tmp_path):
        ckpt = self._checkpoint(small_space, evaluator, tmp_path)
        algorithm, tracker = resume_search(ckpt, small_space,
                                           BenchmarkEvaluator(archive))
        assert tracker.n_evaluations > 0
        assert algorithm.best_reward > 0

    def test_resume_with_different_archive_is_refused(self, small_space,
                                                      evaluator, tmp_path):
        ckpt = self._checkpoint(small_space, evaluator, tmp_path)
        other_path = build_archive(
            small_space, ArchitecturePerformanceModel(small_space, seed=1),
            tmp_path / "other.npz")
        with pytest.raises(ValueError, match="different experiment"):
            resume_search(ckpt, small_space,
                          BenchmarkEvaluator(other_path))

    def test_resume_with_surrogate_evaluator_is_refused(self, small_space,
                                                        model, evaluator,
                                                        tmp_path):
        ckpt = self._checkpoint(small_space, evaluator, tmp_path)
        with pytest.raises(ValueError, match="different experiment"):
            resume_search(ckpt, small_space,
                          SurrogateEvaluator(small_space, model))

    def test_legacy_checkpoints_without_identity_still_resume(
            self, small_space, model, evaluator, tmp_path):
        # Pre-identity checkpoints (and surrogate campaigns, which record
        # None) must keep resuming exactly as before.
        ckpt = self._checkpoint(small_space, evaluator, tmp_path)
        state = json.loads(ckpt.read_text())
        del state["evaluator"]
        _, tracker = resume_search(state, small_space,
                                   SurrogateEvaluator(small_space, model))
        assert tracker.n_evaluations > 0


# ---------------------------------------------------------------------------
# Campaign runner + multi-seed sweep report
# ---------------------------------------------------------------------------

class TestCampaignsAndSweeps:
    def test_campaign_is_a_pure_function_of_its_inputs(self, evaluator):
        a = run_benchmark_campaign(evaluator, algorithm="rs",
                                   n_evaluations=40, seed=0)
        b = run_benchmark_campaign(evaluator, algorithm="rs",
                                   n_evaluations=40, seed=0)
        for key in ("best_reward", "best_architecture", "n_evaluations"):
            assert a[key] == b[key]
        c = run_benchmark_campaign(evaluator, algorithm="rs",
                                   n_evaluations=40, seed=1)
        assert c["best_architecture"] != a["best_architecture"] or \
            c["best_reward"] != a["best_reward"]

    def test_rl_campaign_runs_whole_rounds(self, evaluator):
        result = run_benchmark_campaign(evaluator, algorithm="rl",
                                        n_evaluations=5, seed=0)
        assert result["n_evaluations"] >= 5
        assert result["n_evaluations"] % 4 == 0  # 2 agents x 2 workers

    def test_campaign_counts_table_hits(self, evaluator):
        obs.enable()
        result = run_benchmark_campaign(evaluator, algorithm="rs",
                                        n_evaluations=25, seed=0)
        assert result["table_hits"] == 25
        assert result["surrogate_misses"] == 0

    def test_unknown_algorithm_and_bad_budget(self, evaluator):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_benchmark_campaign(evaluator, algorithm="sa")
        with pytest.raises(ValueError, match="n_evaluations"):
            run_benchmark_campaign(evaluator, n_evaluations=0)

    def test_sweep_report_validates_and_aggregates(self, evaluator):
        report = run_seed_sweep(evaluator, algorithm="rs",
                                n_evaluations=20, n_seeds=4, base_seed=3)
        validate_sweep_report(report)
        assert [c["seed"] for c in report["campaigns"]] == [3, 4, 5, 6]
        best = [c["best_reward"] for c in report["campaigns"]]
        assert report["best_reward"]["min"] == min(best)
        assert report["best_reward"]["max"] == max(best)
        assert report["archive_digest"] == evaluator.digest
        # JSON-serializable end to end (the CLI writes it verbatim).
        validate_sweep_report(json.loads(json.dumps(report)))

    @pytest.mark.parametrize("mutate,match", [
        (lambda r: r.update(format="nope"), "not a sweep report"),
        (lambda r: r.update(version=99), "version"),
        (lambda r: r.pop("campaigns"), "campaigns"),
        (lambda r: r["campaigns"].pop(), "campaigns"),
        (lambda r: r["campaigns"][0].pop("best_reward"), "best_reward"),
        (lambda r: r["campaigns"][0].update(n_evaluations=1), "completed"),
        (lambda r: r["best_reward"].update(mean=float("nan")), "mean"),
    ])
    def test_sweep_report_schema_violations(self, evaluator, mutate,
                                            match):
        report = run_seed_sweep(evaluator, algorithm="rs",
                                n_evaluations=10, n_seeds=2)
        mutate(report)
        with pytest.raises(ValueError, match=match):
            validate_sweep_report(report)


# ---------------------------------------------------------------------------
# Partial-fidelity lookups (the multi-fidelity schedulers' low rungs)
# ---------------------------------------------------------------------------

class TestPartialFidelity:
    def test_in_table_truncation_matches_surrogate_bitwise(
            self, small_space, model, evaluator):
        """`evaluate_at(arch, e)` answered from the archived curve is
        bitwise the surrogate's truncated evaluation: same quality row,
        same two noise draws, linearly prorated cost."""
        surrogate = SurrogateEvaluator(small_space, model)
        for idx, epochs in ((5, 1), (123, 4), (321, 16), (42, 20)):
            arch = small_space.from_index(idx)
            a = evaluator.evaluate_at(arch, epochs,
                                      np.random.default_rng(99))
            b = surrogate.evaluate_at(arch, epochs,
                                      np.random.default_rng(99))
            assert a.reward == b.reward
            assert a.duration == b.duration

    def test_epoch_bounds_are_validated(self, evaluator):
        arch = evaluator.space.from_index(0)
        with pytest.raises(ValueError, match="epochs"):
            evaluator.evaluate_at(arch, 0, np.random.default_rng(0))
        with pytest.raises(ValueError, match="epochs"):
            evaluator.evaluate_at(arch, 21, np.random.default_rng(0))

    def test_curveless_archive_raises_typed_error(self, small_space,
                                                  model, tmp_path):
        """An archive built without per-epoch curves answers full-budget
        asks normally but refuses partial-fidelity ones with
        CurveUnavailableError — a ValueError, never a bare KeyError."""
        from repro.nas import CurveUnavailableError
        path = build_archive(small_space, model, tmp_path / "flat.npz",
                             with_curves=False)
        archive = load_archive(path)
        assert not archive.has_curves
        assert archive.curves.shape == (archive.n_records, 0)
        arch = small_space.from_index(7)
        with pytest.raises(CurveUnavailableError, match="curves"):
            archive.curve(arch)
        assert issubclass(CurveUnavailableError, ValueError)

        flat = BenchmarkEvaluator(archive)
        full = flat.evaluate(arch, np.random.default_rng(3))
        assert full.reward == pytest.approx(full.reward)
        with pytest.raises(CurveUnavailableError, match="curves"):
            flat.evaluate_at(arch, 5, np.random.default_rng(3))
        # Full-budget asks through evaluate_at still work curveless.
        again = flat.evaluate_at(arch, flat.epochs,
                                 np.random.default_rng(3))
        assert again.reward == full.reward
