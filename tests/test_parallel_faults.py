"""Fault injection for the process-pool backend.

A worker that raises, dies, or hangs must never deadlock the caller:
every submitted task eventually gathers either a recovered result
(retry on a fresh worker, or guarded in-process fallback) or a *failure*
EvaluationResult carrying the reason — and a search driving the event
queue over a faulty backend must still run to completion.

The fault evaluators live at module level so they pickle into workers.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import obs
from repro.hpc import (
    ParallelEvaluator,
    SerialEvaluator,
    ThetaPartition,
    run_asynchronous_search,
)
from repro.hpc.parallel import FAILURE_REWARD
from repro.nas import (
    ArchitecturePerformanceModel,
    RandomSearch,
    SurrogateEvaluator,
)
from repro.nas.evaluation import Evaluator


def _surrogate(space):
    return SurrogateEvaluator(space, ArchitecturePerformanceModel(space,
                                                                  seed=0))


class CrashingEvaluator(Evaluator):
    """Raises on every evaluation, in any process."""

    def evaluate(self, arch, rng=None):
        raise RuntimeError("injected evaluation crash")


class DyingEvaluator(Evaluator):
    """Kills its worker process outright (no exception to report)."""

    def __init__(self, space, flag_path):
        super().__init__(space)
        self.flag_path = str(flag_path)
        self._inner = _surrogate(space)

    def evaluate(self, arch, rng=None):
        if not os.path.exists(self.flag_path):
            with open(self.flag_path, "w", encoding="utf-8") as fh:
                fh.write("died once\n")
            os._exit(13)
        return self._inner.evaluate(arch, rng)


class FlakyEvaluator(Evaluator):
    """Raises on the first attempt ever, then recovers (the flag file
    persists across the fresh worker a retry gets)."""

    def __init__(self, space, flag_path):
        super().__init__(space)
        self.flag_path = str(flag_path)
        self._inner = _surrogate(space)

    def evaluate(self, arch, rng=None):
        if not os.path.exists(self.flag_path):
            with open(self.flag_path, "w", encoding="utf-8") as fh:
                fh.write("failed once\n")
            raise RuntimeError("transient failure")
        return self._inner.evaluate(arch, rng)


class HangingEvaluator(Evaluator):
    """Blocks far past any reasonable task timeout."""

    def evaluate(self, arch, rng=None):
        time.sleep(60.0)
        raise AssertionError("unreachable")


class SelectivelyCrashingEvaluator(Evaluator):
    """Deterministically raises for ~a quarter of architectures."""

    def __init__(self, space):
        super().__init__(space)
        self._inner = _surrogate(space)

    def evaluate(self, arch, rng=None):
        if sum(arch) % 4 == 0:
            raise RuntimeError(f"poisoned architecture {tuple(arch)}")
        return self._inner.evaluate(arch, rng)


class UnpicklableEvaluator(Evaluator):
    """Cannot be shipped to a worker process at all."""

    def __init__(self, space):
        super().__init__(space)
        self._inner = _surrogate(space)
        self.hook = lambda r: r  # lambdas don't pickle

    def evaluate(self, arch, rng=None):
        return self.hook(self._inner.evaluate(arch, rng))


def _an_arch(space, seed=0):
    return space.random_architecture(np.random.default_rng(seed))


def _a_seed():
    return np.random.SeedSequence(7)


class TestFailureSurfacesAsResult:
    def test_persistent_raise_yields_failure_result(self, small_space):
        with ParallelEvaluator(CrashingEvaluator(small_space), n_workers=1,
                               max_retries=1) as backend:
            handle = backend.submit(_an_arch(small_space), _a_seed())
            result = backend.gather(handle)
        assert result.metadata["failed"] is True
        assert result.reward == FAILURE_REWARD
        assert "injected evaluation crash" in result.metadata["error"]
        # The guarded in-process fallback ran (and failed) too.
        assert "in-process fallback raised" in result.metadata["error"]

    def test_hang_is_killed_at_timeout(self, small_space):
        start = time.monotonic()
        with ParallelEvaluator(HangingEvaluator(small_space), n_workers=1,
                               task_timeout=0.3, max_retries=1,
                               ) as backend:
            handle = backend.submit(_an_arch(small_space), _a_seed())
            result = backend.gather(handle)
        elapsed = time.monotonic() - start
        assert result.metadata["failed"] is True
        assert "timeout" in result.metadata["error"]
        # Two attempts at 0.3 s each, not 60 s — and, critically, no
        # in-process fallback (that would hang the parent for 60 s).
        assert elapsed < 10.0

    def test_worker_death_retries_on_fresh_worker(self, small_space,
                                                  tmp_path):
        evaluator = DyingEvaluator(small_space, tmp_path / "died.flag")
        arch, seed = _an_arch(small_space), _a_seed()
        with ParallelEvaluator(evaluator, n_workers=1,
                               max_retries=2) as backend:
            result = backend.gather(backend.submit(arch, seed))
        expected = _surrogate(small_space).evaluate(
            arch, np.random.default_rng(_a_seed()))
        assert result.reward == expected.reward
        assert "failed" not in result.metadata

    def test_transient_raise_recovers_via_retry(self, small_space,
                                                tmp_path):
        evaluator = FlakyEvaluator(small_space, tmp_path / "flaky.flag")
        arch, seed = _an_arch(small_space), _a_seed()
        obs.enable()
        with ParallelEvaluator(evaluator, n_workers=1,
                               max_retries=2) as backend:
            result = backend.gather(backend.submit(arch, seed))
        assert "failed" not in result.metadata
        registry = obs.get_registry()
        assert registry.counters["parallel/retries"].value >= 1
        assert registry.counters["parallel/workers_restarted"].value >= 1


class TestGracefulDegradation:
    def test_unpicklable_evaluator_degrades_to_in_process(self,
                                                          small_space):
        evaluator = UnpicklableEvaluator(small_space)
        arch, seed = _an_arch(small_space), _a_seed()
        with ParallelEvaluator(evaluator, n_workers=2) as backend:
            result = backend.gather(backend.submit(arch, seed))
        expected = _surrogate(small_space).evaluate(
            arch, np.random.default_rng(_a_seed()))
        assert result.reward == expected.reward

    def test_degraded_mode_matches_serial_backend(self, small_space):
        archs = [_an_arch(small_space, s) for s in range(5)]
        seeds = [np.random.SeedSequence(s) for s in range(5)]
        with ParallelEvaluator(UnpicklableEvaluator(small_space),
                               n_workers=2) as pool:
            pooled = [pool.gather(pool.submit(a, s))
                      for a, s in zip(archs, seeds)]
        serial = SerialEvaluator(_surrogate(small_space))
        reference = [serial.gather(serial.submit(a, s))
                     for a, s in zip(archs, seeds)]
        assert [r.reward for r in pooled] == \
            [r.reward for r in reference]

    def test_unknown_handle_rejected(self, small_space):
        with ParallelEvaluator(_surrogate(small_space),
                               n_workers=1) as backend:
            with pytest.raises(KeyError):
                backend.gather(999)
        serial = SerialEvaluator(_surrogate(small_space))
        with pytest.raises(KeyError):
            serial.gather(999)

    def test_submit_after_close_rejected(self, small_space):
        backend = ParallelEvaluator(_surrogate(small_space), n_workers=1)
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.submit(_an_arch(small_space), _a_seed())


class TestEventQueueSurvivesFaults:
    def test_search_completes_over_faulty_backend(self, small_space):
        """Failure results flow through the event queue as ordinary
        completions (punishment reward), never as a deadlock."""
        evaluator = SelectivelyCrashingEvaluator(small_space)
        rs = RandomSearch(small_space, rng=0)
        partition = ThetaPartition(n_nodes=4, wall_seconds=1200.0)
        with ParallelEvaluator(evaluator, n_workers=2,
                               max_retries=0) as backend:
            tracker = run_asynchronous_search(rs, evaluator, partition,
                                              rng=5, backend=backend)
        rewards = [r.reward for r in tracker.records]
        assert tracker.n_evaluations > 0
        assert FAILURE_REWARD in rewards, \
            "no poisoned architecture was ever drawn; test is vacuous"
        assert any(r != FAILURE_REWARD for r in rewards)
        # The queue drained to the wall limit despite the faults.
        assert all(r.end_time <= partition.wall_seconds
                   for r in tracker.records)
