"""Fault injection against the sharded router (repro.serve.router).

Every failure mode a distributed serving tier owes its clients an
answer for:

* a worker SIGKILLed mid-request is respawned and the request retried —
  bounded, counted, and bitwise-correct, never silently dropped;
* a full shard queue surfaces at the client as the typed
  :class:`EngineOverloaded`, not a stall;
* a worker crash during a promote cannot tear the fleet: the registry's
  ACTIVE and every shard's generation converge on the new bundle;
* router shutdown fails all in-flight requests with the typed
  :class:`RouterShutdown` — the client socket is answered, never
  deadlocked (the process-level analogue of
  ``ForecastEngine.stop()`` failing its queue with ``EngineStopped``);
* retries are bounded: with ``max_retries=0`` a dead shard reports
  :class:`WorkerUnavailable` instead of retrying forever.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.serve import ModelRegistry
from repro.serve.engine import EngineOverloaded
from repro.serve.protocol import RouterShutdown, WorkerUnavailable
from repro.serve.router import ForecastRouter, RouterClient
from repro.serve.worker import WorkerConfig


@pytest.fixture(scope="module")
def windows(tiny_emulator, generator):
    snaps = generator.snapshots(np.arange(60))
    return tiny_emulator.pipeline.windows_from_snapshots(snaps).inputs[:16]


@pytest.fixture(scope="module")
def serial(tiny_emulator, windows):
    return [tiny_emulator.predict_windows(w[None])[0] for w in windows]


@pytest.fixture(scope="module")
def registry_root(tiny_emulator, tmp_path_factory):
    root = tmp_path_factory.mktemp("fault-registry")
    registry = ModelRegistry(root)
    registry.publish("v1", tiny_emulator, activate=True)
    return root


def test_kill_mid_request_respawns_and_retries(registry_root, windows,
                                               serial):
    """SIGKILL the serving worker while a paced request is in flight:
    the router respawns it, retries, and the client still receives the
    bitwise-correct forecast — plus visible respawn/retry counters."""
    config = WorkerConfig(max_batch=1, cache_entries=0, pace_s=0.5)
    with ForecastRouter(registry_root, n_workers=2,
                        worker_config=config) as router:
        target = router.shard_for(windows[0])
        victim_pid = router.worker_pids()[target]
        outcome: dict = {}

        def request() -> None:
            with RouterClient(router.address, timeout_s=60.0) as client:
                outcome["routed"] = client.forecast(windows[0])

        thread = threading.Thread(target=request)
        thread.start()
        time.sleep(0.2)  # let the request reach the paced engine
        os.kill(victim_pid, signal.SIGKILL)
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "client deadlocked on a dead worker"
        routed = outcome["routed"]
        assert routed.output.tobytes() == serial[0].tobytes()
        stats = router.stats()
        assert stats["respawns"] >= 1
        assert stats["retries"] >= 1
        # The respawned worker is a different process, same shard.
        assert router.worker_pids()[target] != victim_pid


def test_overload_reaches_client_as_typed_error(registry_root, windows):
    """One paced worker with a one-slot queue under six concurrent
    clients must shed: the shed requests surface as the *typed*
    EngineOverloaded at the socket client, and nothing hangs."""
    config = WorkerConfig(max_batch=1, max_queue=1, cache_entries=0,
                          pace_s=0.3)
    with ForecastRouter(registry_root, n_workers=1,
                        worker_config=config) as router:
        outcomes: list[object] = []
        lock = threading.Lock()

        def request(index: int) -> None:
            try:
                with RouterClient(router.address,
                                  timeout_s=30.0) as client:
                    client.forecast(windows[index])
                result: object = "ok"
            except Exception as error:  # noqa: BLE001 - recorded below
                result = error
            with lock:
                outcomes.append(result)

        threads = [threading.Thread(target=request, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads)
    errors = [o for o in outcomes if o != "ok"]
    assert errors, "a 1-slot queue under 6 clients must shed"
    assert all(isinstance(e, EngineOverloaded) for e in errors), \
        f"untyped overload errors: {[type(e).__name__ for e in errors]}"
    assert any(o == "ok" for o in outcomes)


def test_crash_during_promote_leaves_no_torn_generation(
        registry_root, tiny_emulator, generator, windows):
    """A worker that is already dead when the promote rolls (the router
    just does not know yet) is revived onto the *new* generation and
    the *new* ACTIVE — the fleet converges, nothing serves the new
    bundle under the old tag or vice versa."""
    from repro.forecast import PODLSTMEmulator
    from repro.nn import Trainer
    snapshots = generator.snapshots(np.arange(60))
    emulator_v2 = PODLSTMEmulator(n_modes=3, window=4,
                                  trainer=Trainer(epochs=2,
                                                  batch_size=16))
    emulator_v2.fit(snapshots, rng=11)
    registry = ModelRegistry(registry_root)
    registry.publish("v2", emulator_v2)
    registry.promote("v1")
    try:
        with ForecastRouter(registry_root, n_workers=2) as router:
            os.kill(router.worker_pids()[1], signal.SIGKILL)
            router.promote("v2")
            assert registry.active() == "v2"
            stats = router.stats()
            generations = {shard["generation"]
                           for shard in stats["shards"]}
            versions = {shard["version"] for shard in stats["shards"]}
            assert generations == {2}, f"torn fleet: {stats['shards']}"
            assert versions == {"v2"}
            reference = emulator_v2.predict_windows(windows[0][None])[0]
            with RouterClient(router.address) as client:
                routed = client.forecast(windows[0])
            assert routed.generation == 2
            assert routed.version == "v2"
            assert routed.output.tobytes() == reference.tobytes()
    finally:
        registry.promote("v1")  # restore for the other module tests


def test_shutdown_fails_inflight_with_typed_error(registry_root,
                                                  windows):
    """router.close() with a paced request in flight: the client gets
    the typed RouterShutdown (never a silent drop, never a deadlocked
    socket) — the distributed analogue of the engine's EngineStopped
    contract."""
    config = WorkerConfig(max_batch=1, cache_entries=0, pace_s=1.0)
    router = ForecastRouter(registry_root, n_workers=1,
                            worker_config=config).start()
    outcome: dict = {}

    def request() -> None:
        try:
            with RouterClient(router.address, timeout_s=30.0) as client:
                client.forecast(windows[0])
            outcome["result"] = "ok"
        except Exception as error:  # noqa: BLE001 - recorded below
            outcome["result"] = error

    thread = threading.Thread(target=request)
    thread.start()
    time.sleep(0.3)  # the request is inside the paced engine
    router.close()
    thread.join(timeout=30.0)
    assert not thread.is_alive(), "client deadlocked across shutdown"
    assert isinstance(outcome["result"], RouterShutdown), \
        f"expected RouterShutdown, got {outcome['result']!r}"


def test_retries_are_bounded(registry_root, windows):
    """With max_retries=0 a dying shard surfaces as WorkerUnavailable
    after the first death instead of retrying forever."""
    config = WorkerConfig(max_batch=1, cache_entries=0, pace_s=0.5)
    with ForecastRouter(registry_root, n_workers=1, max_retries=0,
                        worker_config=config) as router:
        victim_pid = router.worker_pids()[0]
        outcome: dict = {}

        def request() -> None:
            try:
                with RouterClient(router.address,
                                  timeout_s=30.0) as client:
                    client.forecast(windows[0])
                outcome["result"] = "ok"
            except Exception as error:  # noqa: BLE001 - recorded below
                outcome["result"] = error

        thread = threading.Thread(target=request)
        thread.start()
        time.sleep(0.2)
        os.kill(victim_pid, signal.SIGKILL)
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert isinstance(outcome["result"], WorkerUnavailable), \
            f"expected WorkerUnavailable, got {outcome['result']!r}"
