"""The `repro search` subcommand, including its --workers flag."""

from __future__ import annotations

import pytest

from repro.cli import main


def _search(capsys, *extra):
    code = main(["search", "--nodes", "4", "--wall", "600",
                 "--seed", "0", *extra])
    return code, capsys.readouterr().out


class TestSearchCLI:
    def test_random_search_runs(self, capsys):
        code, out = _search(capsys, "--algorithm", "rs")
        assert code == 0
        assert "evaluations completed:" in out
        assert "best reward:" in out
        assert "in-loop" in out

    def test_workers_zero_and_pool_agree(self, capsys):
        """The user-facing determinism promise: --workers 0 and
        --workers 2 print identical search outcomes."""
        _, serial = _search(capsys, "--algorithm", "rs", "--workers", "0")
        _, pooled = _search(capsys, "--algorithm", "rs", "--workers", "2")
        keep = ("evaluations completed:", "best reward:",
                "best architecture:", "node utilization:")
        pick = lambda text: [ln for ln in text.splitlines()
                             if ln.startswith(keep)]
        assert pick(serial) == pick(pooled)
        assert "serial backend" in serial
        assert "2-worker pool" in pooled

    def test_rl_algorithm_runs(self, capsys):
        code, out = main(["search", "--algorithm", "rl", "--nodes", "8",
                          "--wall", "500", "--agents", "2"]), \
            capsys.readouterr().out
        assert code == 0
        assert "evaluations completed:" in out

    def test_obs_flag_prints_pool_metrics(self, capsys):
        code, out = _search(capsys, "--algorithm", "rs", "--workers", "2",
                            "--obs")
        assert code == 0
        assert "parallel/tasks_dispatched" in out

    def test_invalid_arguments_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["search", "--nodes", "0"])
        with pytest.raises(SystemExit):
            main(["search", "--wall", "-5"])
        with pytest.raises(SystemExit):
            main(["search", "--algorithm", "nope"])

    def test_top_level_help_names_search(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "search" in capsys.readouterr().out


class TestCampaignCLI:
    def test_walltime_resume_matches_single_run(self, capsys, tmp_path):
        """The user-facing campaign promise: a run split by --walltime
        and finished with --resume prints the outcome of one full run."""
        keep = ("evaluations completed:", "best reward:",
                "best architecture:", "node utilization:")
        pick = lambda text: [ln for ln in text.splitlines()
                             if ln.startswith(keep)]
        _, full = _search(capsys, "--algorithm", "ae")
        ckpt = str(tmp_path / "campaign.json")
        code, out = _search(capsys, "--algorithm", "ae",
                            "--walltime", "250", "--checkpoint", ckpt,
                            "--checkpoint-every", "100")
        assert code == 0
        assert "checkpoint written" in out
        code = main(["search", "--resume", ckpt, "--seed", "0"])
        resumed = capsys.readouterr().out
        assert code == 0
        assert "resuming campaign" in resumed
        assert pick(resumed) == pick(full)

    def test_campaign_flags_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["search", "--walltime", "-1"])
        with pytest.raises(SystemExit):
            main(["search", "--checkpoint-every", "60"])  # no --checkpoint
