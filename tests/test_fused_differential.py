"""Differential numerics harness: fused kernels vs the reference path.

The fused recurrent kernels (repro.nn.fused; lstm/gru/rnn layers) are
only allowed to exist because of this suite. The contract they are held
to, across every cell, a grid of shapes (including B=1, T=1, F != H,
odd/non-SIMD sizes) and both detmath modes:

* **forward is bitwise identical** to the reference implementation —
  compared on raw bit patterns, not with a tolerance;
* **backward gradients agree to <= 1e-12** max-abs-diff (the
  cache-blocked accumulation reassociates the timestep reduction;
  everything else is the reference arithmetic in the reference order);
* flipping kernels or batch-invariant mode between calls never corrupts
  a layer's pooled scratch state, and repeated calls are self-identical;
* layer outputs are always fresh arrays — never views into pooled
  scratch a later forward would overwrite (the B=1 aliasing regression).

Shape notes: (1, 1, 3, 5) and (2, 50, 11, 13) pin the small/odd shapes
where differently *shaped* GEMMs over the same data genuinely round
differently (BLAS picks M/N-dependent kernels; the batch-invariant
gufunc's SIMD remainder reorders odd-K accumulation) — the fused path
must therefore issue reference-shaped GEMMs, and these shapes fail
within seconds if it stops doing so. (1, 4, 80, 3) is the serving
regression: a tiny output cell fed by a wide one, caught originally by
the engine's cross-mode bitwise test.
"""

import contextlib

import numpy as np
import pytest

from repro.nn.detmath import batch_invariant
from repro.nn.fused import (fused_enabled, fused_kernels, reference_kernels,
                            set_fused_default)
from repro.nn.layers import (AddLayer, DenseLayer, GRULayer, LSTMLayer,
                             SimpleRNNLayer)
from repro.nn.model import Network

CELLS = [LSTMLayer, GRULayer, SimpleRNNLayer]
CELL_IDS = ["lstm", "gru", "rnn"]

# (batch, steps, in_dim, units)
SHAPES = [
    (64, 16, 8, 64),   # the benchmark/training shape
    (1, 1, 3, 5),      # singleton batch and time, odd dims
    (7, 3, 2, 16),     # row-panel remainder
    (33, 9, 8, 48),    # non-power-of-two batch
    (2, 50, 11, 13),   # long sequence, odd K everywhere
    (1, 4, 80, 3),     # wide-to-narrow (the serving regression)
    (1, 4, 3, 80),     # narrow-to-wide
    (3, 2, 1, 1),      # degenerate single-feature cell
]
SHAPE_IDS = ["b%dt%df%dh%d" % s for s in SHAPES]

MODES = [False, True]
MODE_IDS = ["plain", "invariant"]


def _mode(invariant):
    return batch_invariant() if invariant else contextlib.nullcontext()


def _build(cls, shape, seed_salt=0):
    batch, steps, in_dim, units = shape
    rng = np.random.default_rng(
        abs(hash((cls.__name__, shape, seed_salt))) % 2**32)
    layer = cls(units)
    layer.build([in_dim], rng=rng)
    x = rng.standard_normal((batch, steps, in_dim))
    grad_out = rng.standard_normal((batch, steps, units))
    return layer, x, grad_out


def _run(layer, x, grad_out, *, fused, invariant):
    """One forward+backward pass; returns (y, dx, {param: grad})."""
    with _mode(invariant), fused_kernels(fused):
        y = layer.forward([x])
        layer.zero_grads()
        (dx,) = layer.backward(grad_out)
        grads = {k: v.copy() for k, v in layer.grads.items()}
    return y, dx, grads


class TestForwardBitwise:
    @pytest.mark.parametrize("invariant", MODES, ids=MODE_IDS)
    @pytest.mark.parametrize("shape", SHAPES, ids=SHAPE_IDS)
    @pytest.mark.parametrize("cls", CELLS, ids=CELL_IDS)
    def test_fused_forward_is_bitwise_reference(self, cls, shape, invariant):
        layer, x, _ = _build(cls, shape)
        with _mode(invariant):
            with reference_kernels():
                y_ref = layer.forward([x])
                layer._cache = None
            with fused_kernels():
                y_fused = layer.forward([x])
                layer._cache = None
        # Bit patterns, not tolerances: signed zeros, NaN payloads and
        # the last ulp all count.
        np.testing.assert_array_equal(y_ref.view(np.uint8),
                                      y_fused.view(np.uint8))


class TestBackwardBudget:
    BUDGET = 1e-12

    @pytest.mark.parametrize("invariant", MODES, ids=MODE_IDS)
    @pytest.mark.parametrize("shape", SHAPES, ids=SHAPE_IDS)
    @pytest.mark.parametrize("cls", CELLS, ids=CELL_IDS)
    def test_fused_gradients_within_budget(self, cls, shape, invariant):
        layer, x, grad_out = _build(cls, shape)
        _, dx_ref, g_ref = _run(layer, x, grad_out,
                                fused=False, invariant=invariant)
        _, dx_fused, g_fused = _run(layer, x, grad_out,
                                    fused=True, invariant=invariant)
        assert np.abs(dx_ref - dx_fused).max() <= self.BUDGET
        for name in g_ref:
            assert np.abs(g_ref[name] - g_fused[name]).max() <= \
                self.BUDGET, f"param {name}"


class TestCrossModeServing:
    """The serving engine's contract: a plain-mode forward and a
    batch-invariant forward of the same single example agree bitwise
    (the engine always infers under batch_invariant; clients compare
    against plain-mode serial predictions)."""

    @pytest.mark.parametrize("shape", SHAPES, ids=SHAPE_IDS)
    @pytest.mark.parametrize("cls", CELLS, ids=CELL_IDS)
    def test_single_example_plain_equals_invariant(self, cls, shape):
        batch, steps, in_dim, units = shape
        layer, x, _ = _build(cls, (1, steps, in_dim, units))
        y_plain = layer.forward([x])
        layer._cache = None
        with batch_invariant():
            y_inv = layer.forward([x])
            layer._cache = None
        np.testing.assert_array_equal(y_plain.view(np.uint8),
                                      y_inv.view(np.uint8))


class TestScratchRobustness:
    def test_outputs_are_fresh_arrays_not_pool_views(self):
        """Regression: for singleton batch dims ``transpose(1, 0, 2)``
        of a pooled buffer is already contiguous, and handing out a view
        of it lets the *next* forward overwrite earlier results."""
        for cls in CELLS:
            layer, _, _ = _build(cls, (1, 3, 4, 6))
            rng = np.random.default_rng(5)
            xs = [rng.standard_normal((1, 3, 4)) for _ in range(4)]
            outs = []
            for x in xs:
                outs.append(layer.forward([x]).copy())
                layer._cache = None
            # Re-run: every stored result must still be reproduced.
            for x, want in zip(xs, outs):
                got = layer.forward([x])
                layer._cache = None
                np.testing.assert_array_equal(got, want)

    def test_mode_flip_between_calls_is_safe(self):
        """Alternating fused/reference and plain/invariant between
        calls reuses the same layer (and pool) without contamination.
        (Plain and invariant legitimately differ for B > 1 — the
        comparison is always within the same detmath mode.)"""
        layer, x, grad_out = _build(LSTMLayer, (3, 4, 5, 7))
        baseline = {}
        for invariant in (False, True):
            baseline[invariant] = _run(layer, x, grad_out,
                                       fused=False, invariant=invariant)
        for fused in (True, False, True, True):
            for invariant in (True, False):
                y, _, _ = _run(layer, x, grad_out,
                               fused=fused, invariant=invariant)
                np.testing.assert_array_equal(y, baseline[invariant][0])
        y0, dx0, g0 = baseline[False]
        y, dx, g = _run(layer, x, grad_out, fused=True, invariant=False)
        np.testing.assert_array_equal(y, y0)
        assert np.abs(dx - dx0).max() <= 1e-12
        for name in g0:
            assert np.abs(g[name] - g0[name]).max() <= 1e-12

    def test_backward_matches_its_own_forward_mode(self):
        """The cache records which path filled it; flipping the flag
        between forward and backward must not mix implementations."""
        layer, x, grad_out = _build(GRULayer, (2, 3, 4, 5))
        _, dx_ref, g_ref = _run(layer, x, grad_out,
                                fused=False, invariant=False)
        with reference_kernels():
            layer.forward([x])
        layer.zero_grads()
        with fused_kernels():  # flag flipped after forward
            (dx,) = layer.backward(grad_out)
        np.testing.assert_array_equal(dx, dx_ref)
        for name in g_ref:
            np.testing.assert_array_equal(layer.grads[name], g_ref[name])

    def test_shape_change_rebuilds_buffers(self):
        layer = LSTMLayer(6)
        layer.build([4], rng=0)
        rng = np.random.default_rng(9)
        for shape in [(2, 3, 4), (5, 7, 4), (1, 1, 4), (2, 3, 4)]:
            x = rng.standard_normal(shape)
            with reference_kernels():
                want = layer.forward([x])
                layer._cache = None
            got = layer.forward([x])
            layer._cache = None
            np.testing.assert_array_equal(want, got)


class TestDefaultSwitch:
    def test_process_default_and_context_interact(self):
        assert fused_enabled()  # repo default is fused
        try:
            set_fused_default(False)
            assert not fused_enabled()
            with fused_kernels():
                assert fused_enabled()
            assert not fused_enabled()
        finally:
            set_fused_default(True)
        assert fused_enabled()


class TestNetworkLevel:
    """A hybrid skip-connected DAG run end to end under every mode
    combination — fused/reference x serial/parallel — stays bitwise."""

    def _hybrid(self, parallel=False):
        net = Network(input_dim=5, rng=3, parallel=parallel)
        net.add_node("l1", LSTMLayer(6), ["input"])
        net.add_node("g1", GRULayer(6), ["l1"])
        net.add_node("proj", DenseLayer(6), ["l1"])
        net.add_node("merge", AddLayer("relu"), ["g1", "proj"])
        net.add_node("r1", SimpleRNNLayer(4), ["merge"])
        net.add_node("out", DenseLayer(5), ["r1"])
        net.set_output("out")
        return net

    def test_network_forward_bitwise_all_modes(self):
        x = np.random.default_rng(4).standard_normal((3, 8, 5))
        net = self._hybrid()
        with reference_kernels():
            want = net.forward(x)
        with fused_kernels():
            np.testing.assert_array_equal(net.forward(x), want)
        par = self._hybrid(parallel=True)
        par.set_weights(net.get_weights())
        np.testing.assert_array_equal(par.forward(x), want)
        with reference_kernels():
            np.testing.assert_array_equal(par.forward(x), want)

    def test_network_training_step_equivalent(self):
        x = np.random.default_rng(6).standard_normal((4, 6, 5))
        grad = np.random.default_rng(7).standard_normal((4, 6, 5))
        ref_net, fused_net = self._hybrid(), self._hybrid()
        fused_net.set_weights(ref_net.get_weights())
        with reference_kernels():
            ref_net.forward(x, training=True)
            ref_net.zero_grads()
            dx_ref = ref_net.backward(grad)
        with fused_kernels():
            fused_net.forward(x, training=True)
            fused_net.zero_grads()
            dx_fused = fused_net.backward(grad)
        assert np.abs(dx_ref - dx_fused).max() <= 1e-12
        ref_grads = [g for _, g in ref_net.parameters_and_gradients()]
        fused_grads = [g for _, g in fused_net.parameters_and_gradients()]
        for g_ref, g_fused in zip(ref_grads, fused_grads, strict=True):
            assert np.abs(g_ref - g_fused).max() <= 1e-12
