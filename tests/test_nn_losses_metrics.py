import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.losses import MeanSquaredError
from repro.nn.metrics import r2_score, rmse


class TestMeanSquaredError:
    def test_zero_for_exact(self, rng):
        y = rng.standard_normal((3, 4))
        assert MeanSquaredError().value(y, y) == 0.0

    def test_known_value(self):
        loss = MeanSquaredError()
        assert loss.value(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == 5.0

    def test_gradient_matches_numeric(self, rng):
        loss = MeanSquaredError()
        pred = rng.standard_normal((2, 3))
        target = rng.standard_normal((2, 3))
        grad = loss.gradient(pred, target)
        eps = 1e-7
        for i in range(pred.size):
            p = pred.copy().ravel()
            p[i] += eps
            up = loss.value(p.reshape(pred.shape), target)
            p[i] -= 2 * eps
            down = loss.value(p.reshape(pred.shape), target)
            numeric = (up - down) / (2 * eps)
            assert grad.ravel()[i] == pytest.approx(numeric, abs=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MeanSquaredError().value(np.zeros(2), np.zeros(3))


class TestR2Score:
    def test_perfect(self, rng):
        y = rng.standard_normal(50)
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_predictor_zero(self, rng):
        y = rng.standard_normal(100)
        pred = np.full_like(y, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0, abs=1e-12)

    def test_can_be_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.array([3.0, 2.0, 1.0])
        assert r2_score(y, pred) < 0.0

    def test_constant_target_perfect(self):
        assert r2_score(np.ones(5), np.ones(5)) == 1.0

    def test_constant_target_imperfect(self):
        assert r2_score(np.ones(5), np.zeros(5)) == 0.0

    def test_flattens_tensors(self, rng):
        y = rng.standard_normal((4, 3, 2))
        p = rng.standard_normal((4, 3, 2))
        assert r2_score(y, p) == r2_score(y.ravel(), p.ravel())

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            r2_score(np.zeros(3), np.zeros(4))

    def test_empty(self):
        with pytest.raises(ValueError):
            r2_score([], [])

    @settings(max_examples=30, deadline=None)
    @given(hnp.arrays(np.float64, st.integers(3, 30),
                      elements=st.floats(-100, 100)),
           st.floats(-10, 10), st.floats(0.1, 5.0))
    def test_affine_invariance(self, y, shift, scale):
        """R^2 is invariant when targets and predictions transform by the
        same affine map (non-degenerate targets)."""
        if y.std() < 1e-6:
            return  # constant targets hit the degenerate-case convention
        pred = y * 0.5 + 1.0
        a = r2_score(y, pred)
        b = r2_score(y * scale + shift, pred * scale + shift)
        assert a == pytest.approx(b, rel=1e-6, abs=1e-9)


class TestRMSE:
    def test_zero_for_exact(self, rng):
        y = rng.standard_normal(10)
        assert rmse(y, y) == 0.0

    def test_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == \
            pytest.approx(np.sqrt(12.5))

    def test_scale_equivariant(self, rng):
        y = rng.standard_normal(20)
        p = rng.standard_normal(20)
        assert rmse(2 * y, 2 * p) == pytest.approx(2 * rmse(y, p))

    def test_empty(self):
        with pytest.raises(ValueError):
            rmse([], [])
