import pytest

from repro.hpc.theta import (
    PAPER_NODE_COUNTS,
    ThetaPartition,
    rl_node_allocation,
)


class TestThetaPartition:
    def test_ideal_node_seconds(self):
        part = ThetaPartition(n_nodes=128)
        assert part.ideal_node_seconds == 128 * 3 * 3600.0

    def test_paper_node_counts(self):
        assert PAPER_NODE_COUNTS == (33, 64, 128, 256, 512)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThetaPartition(n_nodes=0)
        with pytest.raises(ValueError):
            ThetaPartition(n_nodes=4, wall_seconds=0)


class TestRLAllocation:
    @pytest.mark.parametrize("nodes,wpa,used,idle", [
        (33, 2, 33, 0),      # paper Sec. IV
        (64, 4, 55, 9),
        (128, 10, 121, 7),
        (256, 22, 253, 3),
        (512, 45, 506, 6),
    ])
    def test_paper_allocations(self, nodes, wpa, used, idle):
        alloc = rl_node_allocation(nodes)
        assert alloc.n_agents == 11
        assert alloc.workers_per_agent == wpa
        assert alloc.n_used == used
        assert alloc.n_idle(nodes) == idle

    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            rl_node_allocation(11)
        with pytest.raises(ValueError):
            rl_node_allocation(12, n_agents=12)

    def test_custom_agents(self):
        alloc = rl_node_allocation(10, n_agents=2)
        assert alloc.workers_per_agent == 4
        assert alloc.n_used == 10
