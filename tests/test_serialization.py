import numpy as np
import pytest

from repro.baselines import build_manual_lstm
from repro.forecast import PODLSTMEmulator, load_emulator, save_emulator
from repro.forecast.scaling import StandardScaler
from repro.nas.space import StackedLSTMSpace, build_network
from repro.nn import DenseLayer, GRULayer, LSTMLayer, Network
from repro.nn.layers import AddLayer
from repro.nn.serialization import load_network, save_network
from repro.nn.training import Trainer


class TestNetworkSerialization:
    def test_roundtrip_simple(self, tmp_path, rng):
        net = build_manual_lstm(8, 2, input_dim=3, output_dim=3, rng=0)
        path = tmp_path / "net.npz"
        save_network(net, path)
        loaded = load_network(path)
        x = rng.standard_normal((2, 5, 3))
        np.testing.assert_allclose(loaded.forward(x), net.forward(x),
                                   atol=1e-14)

    def test_roundtrip_dag_with_skips(self, tmp_path, rng):
        net = Network(input_dim=3, rng=1)
        net.add_node("l1", LSTMLayer(4), ["input"])
        net.add_node("proj", DenseLayer(4), ["input"])
        net.add_node("merge", AddLayer("relu"), ["l1", "proj"])
        net.add_node("out", GRULayer(2), ["merge"])
        path = tmp_path / "dag.npz"
        save_network(net, path)
        loaded = load_network(path)
        x = rng.standard_normal((3, 4, 3))
        np.testing.assert_allclose(loaded.forward(x), net.forward(x),
                                   atol=1e-14)

    def test_roundtrip_nas_architecture(self, tmp_path, rng):
        space = StackedLSTMSpace()
        arch = space.random_architecture(np.random.default_rng(5))
        net = build_network(space, arch, rng=2)
        path = tmp_path / "nas.npz"
        save_network(net, path)
        loaded = load_network(path)
        x = rng.standard_normal((2, 8, 5))
        np.testing.assert_allclose(loaded.forward(x), net.forward(x),
                                   atol=1e-14)
        assert loaded.n_parameters == net.n_parameters

    def test_loaded_network_trainable(self, tmp_path, rng):
        net = build_manual_lstm(6, 1, input_dim=2, output_dim=2, rng=0)
        path = tmp_path / "net.npz"
        save_network(net, path)
        loaded = load_network(path)
        x = rng.standard_normal((40, 4, 2))
        y = 0.3 * np.cumsum(x, axis=1)
        history = Trainer(epochs=3, batch_size=16).fit(loaded, x, y, rng=0)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_empty_network_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_network(Network(input_dim=2, rng=0), tmp_path / "x.npz")

    def test_bad_archive_rejected(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, __spec__=np.frombuffer(b'{"format": "other"}',
                                             dtype=np.uint8))
        with pytest.raises(ValueError, match="not a repro network"):
            load_network(bad)

    def test_roundtrip_path_without_npz_suffix(self, tmp_path, rng):
        """Regression: np.savez silently appends .npz, so saving to
        'model' then loading 'model' raised FileNotFoundError. Both
        sides now accept the exact path the user passed."""
        net = build_manual_lstm(8, 2, input_dim=3, output_dim=3, rng=0)
        path = tmp_path / "model"  # no suffix, as a user might pass
        save_network(net, path)
        assert (tmp_path / "model.npz").exists()
        loaded = load_network(path)  # the very path save accepted
        x = rng.standard_normal((2, 5, 3))
        np.testing.assert_allclose(loaded.forward(x), net.forward(x),
                                   atol=1e-14)

    def test_roundtrip_other_suffix(self, tmp_path, rng):
        net = build_manual_lstm(8, 2, input_dim=3, output_dim=3, rng=0)
        path = tmp_path / "model.ckpt"
        save_network(net, path)
        loaded = load_network(path)
        x = rng.standard_normal((2, 5, 3))
        np.testing.assert_allclose(loaded.forward(x), net.forward(x),
                                   atol=1e-14)


class TestEmulatorSerialization:
    @pytest.fixture()
    def fitted(self, generator):
        snaps = generator.snapshots(np.arange(60))
        emulator = PODLSTMEmulator(n_modes=3, window=4,
                                   trainer=Trainer(epochs=2, batch_size=16))
        emulator.fit(snaps, rng=0)
        return emulator, snaps

    def test_forecasts_identical_after_roundtrip(self, tmp_path, fitted):
        emulator, snaps = fitted
        path = tmp_path / "emulator.npz"
        save_emulator(emulator, path)
        loaded = load_emulator(path)
        times_a, fields_a = emulator.forecast_fields(snaps, horizon=1)
        times_b, fields_b = loaded.forecast_fields(snaps, horizon=1)
        np.testing.assert_array_equal(times_a, times_b)
        np.testing.assert_allclose(fields_a, fields_b, atol=1e-12)

    def test_score_identical(self, tmp_path, fitted):
        emulator, snaps = fitted
        path = tmp_path / "emulator.npz"
        save_emulator(emulator, path)
        loaded = load_emulator(path)
        assert loaded.score(snaps) == pytest.approx(emulator.score(snaps),
                                                    abs=1e-12)

    def test_standard_scaler_variant(self, tmp_path, generator):
        from repro.forecast import PODCoefficientPipeline
        snaps = generator.snapshots(np.arange(50))
        emulator = PODLSTMEmulator(n_modes=2, window=3,
                                   trainer=Trainer(epochs=1, batch_size=16))
        emulator.pipeline = PODCoefficientPipeline(2, 3,
                                                   scaler=StandardScaler())
        emulator.fit(snaps, rng=0)
        path = tmp_path / "std.npz"
        save_emulator(emulator, path)
        loaded = load_emulator(path)
        np.testing.assert_allclose(loaded.pipeline.transform(snaps),
                                   emulator.pipeline.transform(snaps))

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_emulator(PODLSTMEmulator(), tmp_path / "x.npz")


class TestLegacyNetworkFixtures:
    """Pre-fused-kernel artifacts (tests/data/, see
    make_legacy_fixtures.py) must load into today's layers and
    reproduce their recorded forward pass bit for bit — the weight
    layout round-trip guarantee of the fused-kernel rewrite."""

    def test_legacy_network_loads_and_reproduces_forward(self):
        from pathlib import Path
        data = Path(__file__).parent / "data"
        net = load_network(data / "legacy_network.npz")
        x = np.load(data / "legacy_network_input.npy")
        want = np.load(data / "legacy_network_forward.npy")
        got = net.forward(x)  # fused kernels (the default)
        np.testing.assert_array_equal(got.view(np.uint8),
                                      want.view(np.uint8))

    def test_legacy_network_reference_path_also_bitwise(self):
        from pathlib import Path

        from repro.nn.fused import reference_kernels
        data = Path(__file__).parent / "data"
        net = load_network(data / "legacy_network.npz")
        x = np.load(data / "legacy_network_input.npy")
        want = np.load(data / "legacy_network_forward.npy")
        with reference_kernels():
            got = net.forward(x)
        np.testing.assert_array_equal(got.view(np.uint8),
                                      want.view(np.uint8))

    def test_legacy_network_parallel_dag_bitwise(self):
        from pathlib import Path
        data = Path(__file__).parent / "data"
        net = load_network(data / "legacy_network.npz")
        net.parallel = True
        x = np.load(data / "legacy_network_input.npy")
        want = np.load(data / "legacy_network_forward.npy")
        np.testing.assert_array_equal(net.forward(x).view(np.uint8),
                                      want.view(np.uint8))

    def test_legacy_network_save_load_roundtrip_stable(self, tmp_path):
        """Re-serializing a legacy artifact with today's writer loses
        nothing: the re-saved network still reproduces the recording."""
        from pathlib import Path
        data = Path(__file__).parent / "data"
        net = load_network(data / "legacy_network.npz")
        save_network(net, tmp_path / "resaved.npz")
        again = load_network(tmp_path / "resaved.npz")
        x = np.load(data / "legacy_network_input.npy")
        want = np.load(data / "legacy_network_forward.npy")
        np.testing.assert_array_equal(again.forward(x), want)
