import numpy as np

from repro.experiments.reporting import (
    describe_distribution,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1.5, "x"], [2.25, "yy"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "1.500" in text and "yy" in text

    def test_title(self):
        text = format_table(["h"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_float_format(self):
        text = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in text and "1.23" not in text

    def test_alignment(self):
        text = format_table(["name", "v"], [["long-name", 1], ["s", 2]])
        lines = text.splitlines()
        assert len(lines[2]) >= len("long-name")


class TestFormatSeries:
    def test_checkpoints(self):
        times = np.arange(10) * 60.0
        values = np.linspace(0, 1, 10)
        text = format_series(times, values, label="traj", checkpoints=3)
        assert text.startswith("traj:")
        assert "0min" in text and "9min" in text

    def test_empty(self):
        assert "(empty)" in format_series([], [], label="x")


class TestDescribeDistribution:
    def test_contents(self):
        text = describe_distribution([1.0, 2.0, 3.0], label="r")
        assert "mean=2.0000" in text
        assert "min=1.0000" in text and "max=3.0000" in text

    def test_empty(self):
        assert "(empty)" in describe_distribution([], label="x")
