import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.smoothing import moving_average, running_max


class TestMovingAverage:
    def test_constant_series(self):
        np.testing.assert_allclose(moving_average(np.full(10, 3.0), 4),
                                   np.full(10, 3.0))

    def test_warmup_ramp(self):
        out = moving_average([1.0, 2.0, 3.0, 4.0], window=2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_window_one_is_identity(self):
        x = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        np.testing.assert_allclose(moving_average(x, 1), x)

    def test_window_larger_than_series(self):
        out = moving_average([2.0, 4.0], window=100)
        np.testing.assert_allclose(out, [2.0, 3.0])

    def test_empty(self):
        assert moving_average([], 5).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            moving_average(np.ones((2, 2)))

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], window=0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
           st.integers(1, 60))
    def test_bounded_by_extremes(self, values, window):
        out = moving_average(values, window)
        assert np.all(out >= min(values) - 1e-6)
        assert np.all(out <= max(values) + 1e-6)


class TestRunningMax:
    def test_monotone(self):
        out = running_max([3.0, 1.0, 4.0, 1.0, 5.0])
        np.testing.assert_allclose(out, [3.0, 3.0, 4.0, 4.0, 5.0])

    def test_empty(self):
        assert running_max([]).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            running_max(np.ones((2, 2)))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_nondecreasing_property(self, values):
        out = running_max(values)
        assert np.all(np.diff(out) >= 0)
        assert out[-1] == max(values)
