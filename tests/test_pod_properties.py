"""Property-based tests of the POD invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import example, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.pod import fit_pod, project_coefficients, projection_error, reconstruct

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(6, 24), st.integers(4, 12)),
    elements=st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False),
)


def _near_rank_deficient_example():
    """Mostly-constant matrix whose third eigenvalue sits ~1e-10 below the
    leading one — small enough that the method-of-snapshots scaling
    amplifies eigenvector noise past 1e-6 without the QR polish."""
    m = np.full((6, 11), 1.0001)
    m[0, 0] = 0.0
    m[0, 2] = 2.0
    m[1, 0] = 1.0
    m[3, 1] = 7.0
    return m


def _single_subnormal_example():
    m = np.zeros((6, 4))
    m[0, 0] = 1.5018998e-156
    return m


@settings(max_examples=40, deadline=None)
@given(snapshots=matrices)
@example(snapshots=_near_rank_deficient_example())
@example(snapshots=_single_subnormal_example())
def test_modes_orthonormal(snapshots):
    basis = fit_pod(snapshots)
    gram = basis.modes.T @ basis.modes
    np.testing.assert_allclose(gram, np.eye(basis.n_modes), atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(snapshots=matrices)
def test_projection_error_in_unit_interval(snapshots):
    basis = fit_pod(snapshots, 2)
    err = projection_error(basis, snapshots)
    assert -1e-9 <= err <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(snapshots=matrices)
def test_full_rank_reconstruction(snapshots):
    basis = fit_pod(snapshots)
    coeff = project_coefficients(basis, snapshots)
    recon = reconstruct(basis, coeff)
    scale = max(1.0, np.abs(snapshots).max())
    np.testing.assert_allclose(recon, snapshots, atol=1e-6 * scale)


@settings(max_examples=40, deadline=None)
@given(snapshots=matrices)
def test_energy_conservation(snapshots):
    """Total eigenvalue mass equals the centered Frobenius norm squared."""
    basis = fit_pod(snapshots)
    centered = snapshots - snapshots.mean(axis=1, keepdims=True)
    assert basis.energies.sum() == pytest.approx(
        float(np.sum(centered ** 2)), rel=1e-8, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(snapshots=matrices, scale=st.floats(0.1, 10.0))
def test_projection_error_scale_invariant(snapshots, scale):
    """Relative error is invariant to uniform scaling of the data."""
    b1 = fit_pod(snapshots, 2)
    b2 = fit_pod(snapshots * scale, 2)
    e1 = projection_error(b1, snapshots)
    e2 = projection_error(b2, snapshots * scale)
    assert e1 == pytest.approx(e2, rel=1e-6, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(snapshots=matrices)
def test_coefficients_of_training_data_uncorrelated(snapshots):
    """POD coefficients of the fitted snapshots are orthogonal rows
    (diagonal covariance) — the defining property of POD."""
    basis = fit_pod(snapshots)
    coeff = project_coefficients(basis, snapshots)
    cov = coeff @ coeff.T
    off = cov - np.diag(np.diag(cov))
    assert np.abs(off).max() <= 1e-6 * max(1.0, np.abs(cov).max())
