import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.forecast.scaling import MinMaxScaler, StandardScaler

coeff_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 5), st.integers(3, 20)),
    elements=st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False),
)


class TestStandardScaler:
    def test_zero_mean_unit_var(self, rng):
        coeff = rng.standard_normal((3, 50)) * np.array([[10.], [1.], [0.1]])
        scaled = StandardScaler().fit(coeff).transform(coeff)
        np.testing.assert_allclose(scaled.mean(axis=1), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.std(axis=1), 1.0, atol=1e-12)

    def test_roundtrip(self, rng):
        coeff = rng.standard_normal((4, 30))
        scaler = StandardScaler().fit(coeff)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(coeff)), coeff,
            atol=1e-12)

    def test_constant_mode(self):
        coeff = np.vstack([np.ones(10), np.arange(10.0)])
        scaler = StandardScaler().fit(coeff)
        scaled = scaler.transform(coeff)
        np.testing.assert_allclose(scaled[0], 0.0)

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 3)))

    def test_mode_count_check(self, rng):
        scaler = StandardScaler().fit(rng.standard_normal((3, 10)))
        with pytest.raises(ValueError):
            scaler.transform(rng.standard_normal((4, 10)))

    @settings(max_examples=30, deadline=None)
    @given(coeff=coeff_matrices)
    def test_roundtrip_property(self, coeff):
        scaler = StandardScaler().fit(coeff)
        back = scaler.inverse_transform(scaler.transform(coeff))
        np.testing.assert_allclose(back, coeff, atol=1e-6, rtol=1e-6)


class TestMinMaxScaler:
    def test_training_data_within_limit(self, rng):
        coeff = rng.standard_normal((3, 40)) * 100.0
        scaler = MinMaxScaler(limit=0.85).fit(coeff)
        scaled = scaler.transform(coeff)
        assert np.abs(scaled).max() <= 0.85 + 1e-12

    def test_extremes_hit_limit(self, rng):
        coeff = rng.standard_normal((2, 40))
        scaler = MinMaxScaler(limit=0.85).fit(coeff)
        scaled = scaler.transform(coeff)
        for m in range(2):
            assert scaled[m].max() == pytest.approx(0.85)
            assert scaled[m].min() == pytest.approx(-0.85)

    def test_roundtrip(self, rng):
        coeff = rng.standard_normal((4, 25)) * 7.0 + 3.0
        scaler = MinMaxScaler().fit(coeff)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(coeff)), coeff,
            atol=1e-10)

    def test_out_of_range_values_exceed_limit(self, rng):
        """Test-period excursions map beyond the limit (where the LSTM
        head saturates) — by design, not clipped by the scaler."""
        coeff = rng.standard_normal((1, 20))
        scaler = MinMaxScaler(limit=0.5).fit(coeff)
        extreme = np.array([[coeff.max() * 3.0]])
        assert scaler.transform(extreme)[0, 0] > 0.5

    def test_constant_mode(self):
        coeff = np.vstack([np.full(10, 2.0), np.arange(10.0)])
        scaler = MinMaxScaler().fit(coeff)
        np.testing.assert_allclose(scaler.transform(coeff)[0], 0.0)

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            MinMaxScaler(limit=0.0)
        with pytest.raises(ValueError):
            MinMaxScaler(limit=1.5)

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 3)))

    @settings(max_examples=30, deadline=None)
    @given(coeff=coeff_matrices)
    def test_roundtrip_property(self, coeff):
        scaler = MinMaxScaler().fit(coeff)
        back = scaler.inverse_transform(scaler.transform(coeff))
        scale = max(1.0, np.abs(coeff).max())
        np.testing.assert_allclose(back, coeff, atol=1e-8 * scale)
