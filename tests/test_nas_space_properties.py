"""Property-based tests of the search-space invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nas.space import StackedLSTMSpace, build_network
from repro.nas.space.ops import Operation


@st.composite
def spaces(draw):
    n_layers = draw(st.integers(1, 4))
    n_lstm_ops = draw(st.integers(1, 3))
    ops = (Operation("identity"),) + tuple(
        Operation("lstm", 4 * (i + 1)) for i in range(n_lstm_ops))
    max_skip = draw(st.integers(1, 4))
    dim = draw(st.integers(1, 4))
    return StackedLSTMSpace(n_layers=n_layers, input_dim=dim,
                            output_dim=dim, operations=ops,
                            max_skip_depth=max_skip)


@settings(max_examples=30, deadline=None)
@given(space=spaces(), seed=st.integers(0, 1000))
def test_index_roundtrip(space, seed):
    arch = space.random_architecture(np.random.default_rng(seed))
    assert space.from_index(space.index_of(arch)) == arch


@settings(max_examples=30, deadline=None)
@given(space=spaces(), seed=st.integers(0, 1000))
def test_mutation_hamming_distance_one(space, seed):
    rng = np.random.default_rng(seed)
    arch = space.random_architecture(rng)
    child = space.mutate(arch, rng)
    assert sum(a != b for a, b in zip(arch, child)) == 1


@settings(max_examples=25, deadline=None)
@given(space=spaces(), seed=st.integers(0, 1000))
def test_builder_param_count_consistency(space, seed):
    arch = space.random_architecture(np.random.default_rng(seed))
    net = build_network(space, arch, rng=0)
    assert net.n_parameters == space.count_parameters(arch)


@settings(max_examples=20, deadline=None)
@given(space=spaces(), seed=st.integers(0, 1000))
def test_built_network_preserves_sequence_geometry(space, seed):
    rng = np.random.default_rng(seed)
    arch = space.random_architecture(rng)
    net = build_network(space, arch, rng=0)
    x = rng.standard_normal((2, 5, space.input_dim))
    y = net.forward(x)
    assert y.shape == (2, 5, space.output_dim)
    assert np.isfinite(y).all()


@settings(max_examples=30, deadline=None)
@given(space=spaces())
def test_size_equals_cardinality_product(space):
    prod = 1
    for c in space.cardinalities:
        prod *= c
    assert space.size == prod
    assert len(space.cardinalities) == space.n_variable_nodes


@settings(max_examples=25, deadline=None)
@given(space=spaces(), seed=st.integers(0, 1000))
def test_parameter_count_nonnegative_and_monotone_in_ops(space, seed):
    """Adding skips can only add parameters (dense projections)."""
    rng = np.random.default_rng(seed)
    arch = list(space.random_architecture(rng))
    base = space.count_parameters(tuple(arch))
    assert base >= 0
    for pos in range(space.n_layers, len(arch)):
        with_skip = arch.copy()
        with_skip[pos] = 1
        without = arch.copy()
        without[pos] = 0
        assert (space.count_parameters(tuple(with_skip))
                >= space.count_parameters(tuple(without)))
