"""Tier-1 tests of the microbenchmark harness (repro.bench).

The timed suite itself lives under benchmarks/perf (marker ``bench``);
here we verify the harness machinery and the BENCH_core.json contract
fast enough for the default suite: schema validation, setup/timing
separation, and one reps=1 run of the full quick suite through the
``repro bench`` CLI path.
"""

import json

import pytest

from repro.bench import (
    Benchmark,
    default_suite,
    run_benchmark,
    run_suite,
    validate_bench_data,
)
from repro.cli import main


def _constant_bench(name="noop", metadata=None):
    return Benchmark(name=name, make=lambda: (lambda: None),
                     metadata=metadata or {"k": 1})


class TestRunBenchmark:
    def test_fake_clock_statistics(self):
        ticks = iter(range(100))
        result = run_benchmark(_constant_bench(), reps=4,
                               clock=lambda: float(next(ticks)))
        # Every timed rep spans exactly one tick on the fake clock.
        assert result.mean_s == 1.0
        assert result.std_s == 0.0
        assert result.reps == 4

    def test_setup_not_timed(self):
        calls = {"make": 0, "run": 0}

        def make():
            calls["make"] += 1

            def run():
                calls["run"] += 1
            return run

        run_benchmark(Benchmark(name="b", make=make), reps=3)
        assert calls["make"] == 1
        assert calls["run"] == 4  # 1 warmup + 3 timed

    def test_invalid_reps(self):
        with pytest.raises(ValueError, match="reps"):
            run_benchmark(_constant_bench(), reps=0)


class TestSchema:
    def _good_entry(self):
        return {"mean_s": 0.5, "std_s": 0.0, "reps": 3, "metadata": {}}

    def test_accepts_valid(self):
        validate_bench_data({"a": self._good_entry(),
                             "b": self._good_entry()})

    @pytest.mark.parametrize("mutate,match", [
        (lambda e: e.pop("mean_s"), "missing"),
        (lambda e: e.update(mean_s=0.0), "positive"),
        (lambda e: e.update(mean_s=float("nan")), "finite"),
        (lambda e: e.update(std_s=-1.0), "non-negative"),
        (lambda e: e.update(reps=0), "positive int"),
        (lambda e: e.update(reps=True), "positive int"),
        (lambda e: e.update(metadata=[]), "metadata"),
    ])
    def test_rejects_invalid_entries(self, mutate, match):
        entry = self._good_entry()
        mutate(entry)
        with pytest.raises(ValueError, match=match):
            validate_bench_data({"a": entry})

    def test_rejects_empty_and_nondict(self):
        with pytest.raises(ValueError):
            validate_bench_data({})
        with pytest.raises(ValueError):
            validate_bench_data([1, 2])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_suite([_constant_bench("x"), _constant_bench("x")], reps=1)


class TestCoreSuite:
    def test_quick_suite_has_required_coverage(self):
        names = [b.name for b in default_suite(quick=True)]
        assert len(names) >= 6
        assert any(n.startswith("lstm_fwd_bwd") for n in names)
        assert any(n.startswith("gru_fwd_bwd") for n in names)
        assert "trainer_epoch" in names
        assert "pod_basis" in names
        assert any(n.startswith("random_search") for n in names)

    def test_cli_bench_quick_writes_valid_trajectory(self, tmp_path,
                                                     capsys):
        """The acceptance path: `repro bench --quick` produces a valid
        BENCH_core.json with >= 6 named benchmarks (reps=1 for speed)."""
        out = tmp_path / "BENCH_core.json"
        assert main(["bench", "--quick", "--reps", "1",
                     "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        validate_bench_data(data)
        assert len(data) >= 6
        for entry in data.values():
            assert entry["reps"] == 1
        assert str(out) in capsys.readouterr().out

    def test_cli_bench_list_and_filter(self, tmp_path, capsys):
        assert main(["bench", "--quick", "--list"]) == 0
        listed = capsys.readouterr().out.split()
        assert "pod_basis" in listed

        out = tmp_path / "pod.json"
        assert main(["bench", "--quick", "--reps", "1", "--filter",
                     "pod_basis", "--out", str(out)]) == 0
        assert set(json.loads(out.read_text())) == {"pod_basis"}

        assert main(["bench", "--filter", "no_such_bench"]) == 2
