"""Numerical gradient verification for every layer and for full DAGs.

These are the load-bearing tests of the NN substrate: exact BPTT is what
makes the from-scratch framework equivalent to the paper's TF/Keras runs.
"""

import numpy as np
import pytest

from repro.nas.space.ops import default_operations, hybrid_operations
from repro.nn import AddLayer, DenseLayer, LSTMLayer, Network
from repro.nn.fused import fused_kernels
from repro.nn.layers import GRULayer, IdentityLayer, SimpleRNNLayer
from repro.nn.losses import MeanSquaredError

LOSS = MeanSquaredError()


def numeric_param_grads(layer, inputs, grad_out, eps=1e-6):
    """Central-difference gradient of sum(forward * grad_out) wrt params."""
    numeric = {}
    for name, param in layer.params.items():
        g = np.zeros_like(param)
        flat = param.ravel()
        gflat = g.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            up = float(np.sum(layer.forward(inputs) * grad_out))
            flat[i] = orig - eps
            down = float(np.sum(layer.forward(inputs) * grad_out))
            flat[i] = orig
            gflat[i] = (up - down) / (2 * eps)
        numeric[name] = g
    return numeric


def check_layer_gradients(layer, inputs, rng, atol=1e-6):
    out = layer.forward(inputs)
    grad_out = rng.standard_normal(out.shape)
    layer.zero_grads()
    layer.forward(inputs)
    input_grads = layer.backward(grad_out)

    numeric = numeric_param_grads(layer, inputs, grad_out)
    for name in layer.params:
        np.testing.assert_allclose(layer.grads[name], numeric[name],
                                   atol=atol, rtol=1e-4,
                                   err_msg=f"param {name}")

    eps = 1e-6
    for k, x in enumerate(inputs):
        g = np.zeros_like(x)
        flat, gflat = x.ravel(), g.ravel()
        for i in range(0, flat.size, max(1, flat.size // 40)):
            orig = flat[i]
            flat[i] = orig + eps
            up = float(np.sum(layer.forward(inputs) * grad_out))
            flat[i] = orig - eps
            down = float(np.sum(layer.forward(inputs) * grad_out))
            flat[i] = orig
            gflat[i] = (up - down) / (2 * eps)
            assert input_grads[k].ravel()[i] == pytest.approx(
                gflat[i], abs=atol, rel=1e-4), f"input {k} element {i}"


class TestLayerGradients:
    def test_dense(self, rng):
        layer = DenseLayer(3, activation="tanh")
        layer.build([4], rng=0)
        check_layer_gradients(layer, [rng.standard_normal((2, 3, 4))], rng)

    def test_dense_linear(self, rng):
        layer = DenseLayer(2)
        layer.build([3], rng=1)
        check_layer_gradients(layer, [rng.standard_normal((3, 2, 3))], rng)

    def test_lstm(self, rng):
        layer = LSTMLayer(3)
        layer.build([2], rng=0)
        check_layer_gradients(layer, [rng.standard_normal((2, 4, 2))], rng,
                              atol=2e-6)

    def test_lstm_longer_sequence(self, rng):
        layer = LSTMLayer(2)
        layer.build([2], rng=3)
        check_layer_gradients(layer, [rng.standard_normal((1, 8, 2))], rng,
                              atol=2e-6)

    def test_add_relu(self, rng):
        layer = AddLayer("relu")
        layer.build([3, 3], rng=0)
        inputs = [rng.standard_normal((2, 3, 3)) + 0.1,
                  rng.standard_normal((2, 3, 3))]
        check_layer_gradients(layer, inputs, rng)


class TestNetworkGradients:
    def _check_network(self, net, x, y, rng, n_probes=60):
        pred = net.forward(x, training=True)
        net.zero_grads()
        input_grad = net.backward(LOSS.gradient(pred, y))

        def loss():
            return LOSS.value(net.forward(x, training=True), y)

        eps = 1e-6
        params = [(p, g) for p, g in net.parameters_and_gradients()]
        probe_rng = np.random.default_rng(0)
        for p, g in params:
            flat, gflat = p.ravel(), g.ravel()
            for _ in range(max(2, n_probes // len(params))):
                i = int(probe_rng.integers(flat.size))
                orig = flat[i]
                flat[i] = orig + eps
                up = loss()
                flat[i] = orig - eps
                down = loss()
                flat[i] = orig
                numeric = (up - down) / (2 * eps)
                assert gflat[i] == pytest.approx(numeric, abs=5e-7,
                                                 rel=1e-4)
        # input gradient probes
        flat, gflat = x.ravel(), input_grad.ravel()
        for _ in range(10):
            i = int(probe_rng.integers(flat.size))
            orig = flat[i]
            flat[i] = orig + eps
            up = loss()
            flat[i] = orig - eps
            down = loss()
            flat[i] = orig
            numeric = (up - down) / (2 * eps)
            assert gflat[i] == pytest.approx(numeric, abs=5e-7, rel=1e-4)

    def test_stacked_lstm(self, rng):
        net = Network(input_dim=3, rng=0)
        net.add_node("l1", LSTMLayer(4), ["input"])
        net.add_node("l2", LSTMLayer(2), ["l1"])
        x = rng.standard_normal((3, 5, 3))
        y = rng.standard_normal((3, 5, 2))
        self._check_network(net, x, y, rng)

    def test_skip_connection_dag(self, rng):
        """The paper's skip pattern: dense projection + add + ReLU."""
        net = Network(input_dim=3, rng=1)
        net.add_node("l1", LSTMLayer(4), ["input"])
        net.add_node("proj", DenseLayer(4), ["input"])
        net.add_node("merge", AddLayer("relu"), ["l1", "proj"])
        net.add_node("l2", LSTMLayer(2), ["merge"])
        x = rng.standard_normal((2, 4, 3))
        y = rng.standard_normal((2, 4, 2))
        self._check_network(net, x, y, rng)

    def test_multi_fanout(self, rng):
        """One node feeding several consumers accumulates gradients."""
        net = Network(input_dim=2, rng=2)
        net.add_node("l1", LSTMLayer(3), ["input"])
        net.add_node("p1", DenseLayer(3), ["l1"])
        net.add_node("p2", DenseLayer(3), ["l1"])
        net.add_node("merge", AddLayer("relu"), ["p1", "p2", "l1"])
        net.add_node("out", LSTMLayer(2), ["merge"])
        x = rng.standard_normal((2, 3, 2))
        y = rng.standard_normal((2, 3, 2))
        self._check_network(net, x, y, rng)

    def test_hybrid_cell_skip_dag(self, rng):
        """Skip connections through GRU/SimpleRNN nodes (hybrid catalog)."""
        net = Network(input_dim=3, rng=4)
        net.add_node("g1", GRULayer(4), ["input"])
        net.add_node("proj", DenseLayer(4), ["input"])
        net.add_node("merge", AddLayer("relu"), ["g1", "proj"])
        net.add_node("r1", SimpleRNNLayer(3), ["merge"])
        net.add_node("out", LSTMLayer(2), ["r1"])
        x = rng.standard_normal((2, 4, 3))
        y = rng.standard_normal((2, 4, 2))
        self._check_network(net, x, y, rng)


# Every distinct operation exposed by the search-space catalogs
# (default_operations + hybrid_operations) — any op a search can reach.
SPACE_OPS = sorted({(op.kind, op.units)
                    for op in default_operations() + hybrid_operations()})

_CELL_LAYERS = {"lstm": LSTMLayer, "gru": GRULayer, "rnn": SimpleRNNLayer}


def probe_gradient_check(layer, inputs, rng, *, n_probes=24, eps=1e-6,
                         rtol=1e-5, atol=1e-7):
    """Central-difference check on sampled parameter/input coordinates.

    Sampling (instead of the exhaustive sweep above) keeps the check
    affordable for the catalog's large cells (up to LSTM(96)) while still
    covering every parameter tensor of every op at rtol 1e-5.
    """
    out = layer.forward(inputs)
    grad_out = rng.standard_normal(out.shape)
    layer.zero_grads()
    layer.forward(inputs)
    input_grads = layer.backward(grad_out)

    def objective():
        return float(np.sum(layer.forward(inputs) * grad_out))

    probe_rng = np.random.default_rng(0)

    def check_coordinates(array, analytic, label):
        flat, gflat = array.ravel(), analytic.ravel()
        picks = probe_rng.choice(flat.size, size=min(n_probes, flat.size),
                                 replace=False)
        for i in picks:
            orig = flat[i]
            flat[i] = orig + eps
            up = objective()
            flat[i] = orig - eps
            down = objective()
            flat[i] = orig
            numeric = (up - down) / (2 * eps)
            assert gflat[i] == pytest.approx(numeric, rel=rtol, abs=atol), \
                f"{label} coordinate {i}"

    for name, param in layer.params.items():
        check_coordinates(param, layer.grads[name], f"param {name}")
    for k, x in enumerate(inputs):
        check_coordinates(x, input_grads[k], f"input {k}")


class TestSearchSpaceOpGradients:
    """Finite-difference coverage of *every* op the search space exposes
    (ops.py catalogs): each recurrent cell at each catalog size, the
    identity op, and the elementwise add combiner."""

    @pytest.mark.parametrize(
        "kind,units", SPACE_OPS,
        ids=[f"{k}{u}" if u else k for k, u in SPACE_OPS])
    def test_catalog_op(self, kind, units, rng):
        if kind == "identity":
            layer = IdentityLayer()
            layer.build([3], rng=0)
            x = rng.standard_normal((2, 3, 3))
            out = layer.forward([x])
            np.testing.assert_array_equal(out, x)
            grad = rng.standard_normal(out.shape)
            (grad_in,) = layer.backward(grad)
            np.testing.assert_array_equal(grad_in, grad)
            return
        layer = _CELL_LAYERS[kind](units)
        layer.build([5], rng=0)
        probe_gradient_check(layer, [rng.standard_normal((2, 4, 5))], rng)

class TestRecurrentGradientsBothKernels:
    """Finite differences against the fused AND the reference kernels
    for every cell, at rectangular (in_dim != units) sizes in both
    directions — the fused BPTT's stacked accumulation GEMMs are shape-
    sensitive, so a square-only check would miss transposition bugs."""

    RECT_CELLS = [
        (LSTMLayer, 2, 7),   # narrow input, wide state
        (LSTMLayer, 9, 3),   # wide input, narrow state
        (GRULayer, 2, 6),
        (GRULayer, 8, 3),
        (SimpleRNNLayer, 3, 5),
        (SimpleRNNLayer, 7, 2),
    ]

    @pytest.mark.parametrize("fused", [True, False],
                             ids=["fused", "reference"])
    @pytest.mark.parametrize(
        "cls,in_dim,units", RECT_CELLS,
        ids=[f"{c.__name__}_{f}to{u}" for c, f, u in RECT_CELLS])
    def test_rectangular_cell(self, cls, in_dim, units, fused, rng):
        layer = cls(units)
        layer.build([in_dim], rng=0)
        with fused_kernels(fused):
            check_layer_gradients(
                layer, [rng.standard_normal((2, 4, in_dim))], rng,
                atol=2e-6)

    @pytest.mark.parametrize("fused", [True, False],
                             ids=["fused", "reference"])
    def test_singleton_batch_lstm(self, fused, rng):
        """B=1/T=1 corners exercise the pooled-scratch edge cases."""
        layer = LSTMLayer(4)
        layer.build([3], rng=1)
        with fused_kernels(fused):
            check_layer_gradients(
                layer, [rng.standard_normal((1, 1, 3))], rng, atol=2e-6)


class TestSearchSpaceOpGradientsContinued:
    @pytest.mark.parametrize("activation", ["relu", "identity", "tanh"])
    def test_elementwise_combiner(self, activation, rng):
        """The add-merge node (skip-connection combiner) for every
        activation the DAG builder can attach to it."""
        layer = AddLayer(activation)
        layer.build([4, 4, 4], rng=0)
        inputs = [rng.standard_normal((2, 3, 4)) + 0.1 for _ in range(3)]
        probe_gradient_check(layer, inputs, rng)
