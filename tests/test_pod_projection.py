import numpy as np
import pytest

from repro.pod import (
    cumulative_energy,
    fit_pod,
    modes_for_energy,
    project_coefficients,
    projection_error,
    reconstruct,
)


@pytest.fixture()
def snapshots(rng):
    t = np.linspace(0, 4 * np.pi, 30)
    u1, u2, u3 = (rng.standard_normal(50) for _ in range(3))
    return (np.outer(u1, 4 * np.sin(t)) + np.outer(u2, np.cos(2 * t))
            + np.outer(u3, 0.2 * np.sin(5 * t)) + 1.5)


class TestProjectReconstruct:
    def test_coefficient_shape(self, snapshots):
        basis = fit_pod(snapshots, 3)
        coeff = project_coefficients(basis, snapshots)
        assert coeff.shape == (3, 30)

    def test_full_rank_reconstruction_exact(self, snapshots):
        basis = fit_pod(snapshots)
        coeff = project_coefficients(basis, snapshots)
        np.testing.assert_allclose(reconstruct(basis, coeff), snapshots,
                                   atol=1e-8)

    def test_reconstruction_without_mean(self, snapshots):
        basis = fit_pod(snapshots, 2)
        coeff = project_coefficients(basis, snapshots)
        with_mean = reconstruct(basis, coeff)
        without = reconstruct(basis, coeff, add_mean=False)
        np.testing.assert_allclose(with_mean - without,
                                   np.tile(basis.stats.mean[:, None],
                                           (1, 30)))

    def test_centered_flag(self, snapshots):
        basis = fit_pod(snapshots, 2)
        centered = basis.stats.center(snapshots)
        a = project_coefficients(basis, snapshots)
        b = project_coefficients(basis, centered, centered=True)
        np.testing.assert_allclose(a, b)

    def test_coefficient_rows_mismatch(self, snapshots):
        basis = fit_pod(snapshots, 2)
        with pytest.raises(ValueError):
            reconstruct(basis, np.zeros((3, 5)))

    def test_projection_is_idempotent(self, snapshots):
        basis = fit_pod(snapshots, 2)
        coeff = project_coefficients(basis, snapshots)
        recon = reconstruct(basis, coeff)
        coeff2 = project_coefficients(basis, recon)
        np.testing.assert_allclose(coeff, coeff2, atol=1e-8)


class TestProjectionError:
    def test_eq8_identity(self, snapshots):
        """Paper Eq. 8 (with corrected eigenvalue power): the projection
        error on the training snapshots equals the tail energy ratio."""
        full = fit_pod(snapshots)
        for n_r in (1, 2, 3):
            basis = full.truncate(n_r)
            err = projection_error(basis, snapshots)
            tail = full.energies[n_r:].sum() / full.energies.sum()
            assert err == pytest.approx(tail, rel=1e-6, abs=1e-10)

    def test_error_decreases_with_modes(self, snapshots):
        full = fit_pod(snapshots)
        errors = [projection_error(full.truncate(k), snapshots)
                  for k in (1, 2, 3)]
        assert errors[0] >= errors[1] >= errors[2]

    def test_full_rank_error_zero(self, snapshots):
        basis = fit_pod(snapshots)
        assert projection_error(basis, snapshots) == pytest.approx(0.0,
                                                                   abs=1e-10)

    def test_zero_snapshots(self):
        basis = fit_pod(np.random.default_rng(0).standard_normal((10, 5)), 2)
        constant = np.tile(basis.stats.mean[:, None], (1, 4))
        assert projection_error(basis, constant) == 0.0


class TestEnergyHelpers:
    def test_cumulative_energy(self):
        np.testing.assert_allclose(cumulative_energy([3.0, 1.0]),
                                   [0.75, 1.0])

    def test_cumulative_energy_zero_total(self):
        np.testing.assert_allclose(cumulative_energy([0.0, 0.0]), [1.0, 1.0])

    def test_cumulative_rejects_negative(self):
        with pytest.raises(ValueError):
            cumulative_energy([-1.0, 2.0])

    def test_modes_for_energy(self):
        energies = [50.0, 30.0, 15.0, 5.0]
        assert modes_for_energy(energies, 0.5) == 1
        assert modes_for_energy(energies, 0.8) == 2
        assert modes_for_energy(energies, 0.95) == 3
        assert modes_for_energy(energies, 1.0) == 4

    def test_modes_for_energy_invalid(self):
        with pytest.raises(ValueError):
            modes_for_energy([1.0], 0.0)


class TestPaperCalibration:
    def test_five_modes_capture_about_92_percent(self, train_snapshots):
        """The synthetic archive is calibrated to the paper's figure."""
        basis = fit_pod(train_snapshots, 10)
        frac = basis.energy_fraction(5)
        assert 0.85 < frac < 0.97
