import numpy as np
import pytest

from repro.comparators import (
    SimulatedCESM,
    SimulatedHYCOM,
    coarsen_field,
    refine_field,
    regional_rmse,
    regrid_roundtrip,
    weekly_rmse_breakdown,
)
from repro.comparators.regrid import fill_nan_nearest
from repro.data.grid import EASTERN_PACIFIC, Region


class TestRegrid:
    def test_refine_shape(self, generator):
        fine = refine_field(generator.field(0), 3)
        assert fine.shape == (generator.grid.n_lat * 3,
                              generator.grid.n_lon * 3)

    def test_refine_preserves_land(self, generator):
        field = generator.field(0)
        fine = refine_field(field, 2)
        frac_coarse = np.isnan(field).mean()
        frac_fine = np.isnan(fine).mean()
        assert frac_fine == pytest.approx(frac_coarse, abs=0.02)

    def test_roundtrip_close_to_original(self, generator):
        field = generator.field(0)
        back = regrid_roundtrip(field, 2)
        ocean = generator.ocean_mask
        err = np.sqrt(np.nanmean((back[ocean] - field[ocean]) ** 2))
        assert err < 0.5  # representation error is small but nonzero

    def test_roundtrip_not_exact(self, generator):
        """Cubic interpolation must introduce *some* representation
        error — the artifact the paper attributes to regridding."""
        field = generator.field(0)
        back = regrid_roundtrip(field, 2, smooth_sigma=1.0)
        ocean = generator.ocean_mask
        assert not np.allclose(back[ocean], field[ocean])

    def test_coarsen_divisibility(self):
        with pytest.raises(ValueError):
            coarsen_field(np.ones((10, 10)), 3)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            refine_field(np.ones((4, 4)), 0)

    def test_fill_nan_nearest(self):
        field = np.array([[1.0, np.nan], [np.nan, 4.0]])
        filled = fill_nan_nearest(field)
        assert np.isfinite(filled).all()
        assert filled[0, 0] == 1.0 and filled[1, 1] == 4.0

    def test_fill_all_nan_rejected(self):
        with pytest.raises(ValueError):
            fill_nan_nearest(np.full((3, 3), np.nan))


class TestSimulatedCESM:
    def test_field_shape_and_mask(self, generator):
        cesm = SimulatedCESM(generator)
        field = cesm.field(100)
        assert field.shape == generator.grid.shape
        assert np.isnan(field[~generator.ocean_mask]).all()

    def test_climatology_tracked(self, generator):
        """CESM follows the seasonal cycle: correlation with truth over a
        year is high at a strongly seasonal point."""
        cesm = SimulatedCESM(generator)
        i, j = generator.grid.nearest_index(42.0, 180.0)
        weeks = np.arange(0, 104, 4)
        truth = generator.fields(weeks)[:, i, j]
        model = cesm.fields(weeks)[:, i, j]
        assert np.corrcoef(truth, model)[0, 1] > 0.8

    def test_interannual_uncorrelated(self, generator):
        """CESM's ENSO trajectory is independent of the observed one."""
        cesm = SimulatedCESM(generator)
        truth_e = [generator.enso_index(t) for t in range(0, 1900, 10)]
        model_e = [cesm._internal.enso_index(t) for t in range(0, 1900, 10)]
        assert abs(np.corrcoef(truth_e, model_e)[0, 1]) < 0.5

    def test_member_seed_must_differ(self, generator):
        with pytest.raises(ValueError):
            SimulatedCESM(generator, member_seed=generator.seed)

    def test_snapshots_layout(self, generator):
        cesm = SimulatedCESM(generator)
        snaps = cesm.snapshots([0, 1])
        assert snaps.shape == (generator.n_ocean, 2)
        assert np.isfinite(snaps).all()

    def test_bias_applied(self, generator):
        biased = SimulatedCESM(generator, bias=2.0)
        unbiased = SimulatedCESM(generator, bias=0.0)
        f_b = biased.field(50)
        f_u = unbiased.field(50)
        ocean = generator.ocean_mask
        assert np.nanmean(f_b[ocean] - f_u[ocean]) == pytest.approx(2.0,
                                                                    abs=0.3)


class TestSimulatedHYCOM:
    def test_tracks_truth_closely(self, generator):
        hycom = SimulatedHYCOM(generator)
        idx = np.arange(100, 120)
        truth = generator.fields(idx)
        model = hycom.fields(idx)
        rmse = regional_rmse(truth, model, generator.grid,
                             EASTERN_PACIFIC, generator.ocean_mask)
        assert rmse < 1.6

    def test_better_than_cesm(self, generator):
        idx = np.arange(200, 230)
        truth = generator.fields(idx)
        hycom_rmse = regional_rmse(truth, SimulatedHYCOM(generator).fields(idx),
                                   generator.grid, EASTERN_PACIFIC,
                                   generator.ocean_mask)
        cesm_rmse = regional_rmse(truth, SimulatedCESM(generator).fields(idx),
                                  generator.grid, EASTERN_PACIFIC,
                                  generator.ocean_mask)
        assert hycom_rmse < cesm_rmse

    def test_deterministic(self, generator):
        a = SimulatedHYCOM(generator).field(77)
        b = SimulatedHYCOM(generator).field(77)
        np.testing.assert_allclose(a, b, equal_nan=True)

    def test_damping_validation(self, generator):
        with pytest.raises(ValueError):
            SimulatedHYCOM(generator, anomaly_damping=1.5)

    def test_error_std_validation(self, generator):
        with pytest.raises(ValueError):
            SimulatedHYCOM(generator, error_std=-0.1)


class TestRegionalMetrics:
    def test_regional_rmse_zero_for_identical(self, generator):
        fields = generator.fields([0, 1])
        assert regional_rmse(fields, fields, generator.grid,
                             EASTERN_PACIFIC, generator.ocean_mask) == 0.0

    def test_regional_rmse_known_offset(self, generator):
        fields = generator.fields([0])
        shifted = fields + 2.0
        assert regional_rmse(fields, shifted, generator.grid,
                             EASTERN_PACIFIC, generator.ocean_mask) == \
            pytest.approx(2.0)

    def test_shape_mismatch(self, generator):
        f = generator.fields([0, 1])
        with pytest.raises(ValueError):
            regional_rmse(f, f[:1], generator.grid, EASTERN_PACIFIC,
                          generator.ocean_mask)

    def test_land_region_rejected(self, generator):
        land_region = Region(lat_min=-89, lat_max=-80, lon_min=10,
                             lon_max=60, name="antarctica")
        f = generator.fields([0])
        with pytest.raises(ValueError, match="no ocean"):
            regional_rmse(f, f, generator.grid, land_region,
                          generator.ocean_mask)

    def test_weekly_breakdown(self, generator):
        f = generator.fields([0, 1])
        truth = {1: f, 2: f}
        forecast = {1: f + 1.0, 2: f + 2.0}
        out = weekly_rmse_breakdown(truth, forecast, generator.grid,
                                    EASTERN_PACIFIC, generator.ocean_mask)
        assert out[1] == pytest.approx(1.0)
        assert out[2] == pytest.approx(2.0)

    def test_weekly_breakdown_key_mismatch(self, generator):
        f = generator.fields([0])
        with pytest.raises(ValueError):
            weekly_rmse_breakdown({1: f}, {2: f}, generator.grid,
                                  EASTERN_PACIFIC, generator.ocean_mask)
