"""Differential serial-equivalence suite for the parallel backend.

THE correctness contract of repro.hpc.parallel (docs/PARALLELISM.md):
for a fixed seed, routing evaluations through a process pool must leave
every recorded quantity bitwise identical to the in-process serial
backend — for each search algorithm, at any worker count, regardless of
completion order. Equality below is exact (`==` on floats), never
approximate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hpc import (
    ClusterConfig,
    ParallelEvaluator,
    SerialEvaluator,
    ThetaPartition,
    run_search,
)
from repro.hpc.theta import rl_node_allocation
from repro.nas import (
    AgingEvolution,
    ArchitecturePerformanceModel,
    DistributedRL,
    RandomSearch,
    SurrogateEvaluator,
)

WORKER_COUNTS = (1, 2, 4)
PARTITION = ThetaPartition(n_nodes=6, wall_seconds=1500.0)
RL_PARTITION = ThetaPartition(n_nodes=8, wall_seconds=1200.0)


def _make_algorithm(name, space):
    if name == "rs":
        return RandomSearch(space, rng=0), PARTITION
    if name == "ae":
        return AgingEvolution(space, rng=3, population_size=8,
                              sample_size=3), PARTITION
    wpa = rl_node_allocation(RL_PARTITION.n_nodes, 2).workers_per_agent
    return DistributedRL(space, rng=0, n_agents=2,
                         workers_per_agent=wpa), RL_PARTITION


def _run(small_space, name, workers, cluster=None):
    """One full search with a fresh evaluator/algorithm/backend."""
    evaluator = SurrogateEvaluator(
        small_space, ArchitecturePerformanceModel(small_space, seed=0))
    algorithm, partition = _make_algorithm(name, small_space)
    if workers is None:
        backend = SerialEvaluator(evaluator)
    else:
        backend = ParallelEvaluator(evaluator, n_workers=workers)
    with backend:
        return run_search(algorithm, evaluator, partition, rng=5,
                          backend=backend, cluster=cluster)


def _fingerprint(tracker):
    """Everything the tracker records, exactly."""
    return {
        "records": [(r.architecture, r.reward, r.start_time, r.end_time,
                     r.node, r.n_parameters) for r in tracker.records],
        "n_failures": tracker.n_failures,
        "busy_events": tracker._busy_events,
    }


@pytest.mark.parametrize("algorithm", ["ae", "rs", "ppo"])
class TestSerialEquivalence:
    def test_pool_matches_serial_at_every_worker_count(self, small_space,
                                                       algorithm):
        reference = _fingerprint(_run(small_space, algorithm, None))
        assert reference["records"], "reference run recorded nothing"
        for workers in WORKER_COUNTS:
            parallel = _fingerprint(_run(small_space, algorithm, workers))
            assert parallel == reference, \
                f"{algorithm} diverged from serial at {workers} workers"

    def test_serial_backend_is_deterministic(self, small_space, algorithm):
        a = _fingerprint(_run(small_space, algorithm, None))
        b = _fingerprint(_run(small_space, algorithm, None))
        assert a == b


class TestEquivalenceUnderFailureInjection:
    """Simulated node failures draw from the node streams, not the task
    streams — the pool must not perturb them."""

    CLUSTER = ClusterConfig(failure_rate=0.2, failure_reward=-1.0)

    @pytest.mark.parametrize("algorithm", ["rs", "ppo"])
    def test_pool_matches_serial_with_failures(self, small_space,
                                               algorithm):
        reference = _fingerprint(
            _run(small_space, algorithm, None, cluster=self.CLUSTER))
        assert reference["n_failures"] > 0, \
            "failure injection produced no failures; test is vacuous"
        for workers in (2,):
            parallel = _fingerprint(
                _run(small_space, algorithm, workers, cluster=self.CLUSTER))
            assert parallel == reference


class TestRewardBitwiseIdentity:
    def test_rewards_are_bitwise_not_just_close(self, small_space):
        serial = _run(small_space, "rs", None)
        pooled = _run(small_space, "rs", 3)
        a = np.array([r.reward for r in serial.records])
        b = np.array([r.reward for r in pooled.records])
        assert a.tobytes() == b.tobytes()

    def test_workers_kwarg_builds_equivalent_backend(self, small_space):
        """run_search(workers=N) (the CLI path) matches an explicit
        backend."""
        evaluator = SurrogateEvaluator(
            small_space, ArchitecturePerformanceModel(small_space, seed=0))
        rs = RandomSearch(small_space, rng=0)
        via_kwarg = run_search(rs, evaluator, PARTITION, rng=5, workers=2)
        reference = _run(small_space, "rs", 2)
        assert _fingerprint(via_kwarg) == _fingerprint(reference)

    def test_backend_and_workers_are_exclusive(self, small_space):
        evaluator = SurrogateEvaluator(small_space)
        rs = RandomSearch(small_space, rng=0)
        with pytest.raises(ValueError, match="not both"):
            run_search(rs, evaluator, PARTITION, rng=5, workers=2,
                       backend=SerialEvaluator(evaluator))
