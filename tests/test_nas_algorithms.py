import numpy as np
import pytest

from repro.nas import (
    AgingEvolution,
    ArchitecturePerformanceModel,
    RandomSearch,
    SurrogateEvaluator,
)


@pytest.fixture()
def oracle(small_space):
    return ArchitecturePerformanceModel(small_space, seed=0, noise_std=0.002)


def drive(algorithm, oracle, n, eval_seed=0):
    rng = np.random.default_rng(eval_seed)
    for _ in range(n):
        arch = algorithm.ask()
        algorithm.tell(arch, oracle.observed_quality(arch, rng))
    return algorithm


class TestRandomSearch:
    def test_tracks_best(self, small_space, oracle):
        rs = drive(RandomSearch(small_space, rng=0), oracle, 200)
        assert rs.n_asked == rs.n_told == 200
        assert rs.best_architecture is not None
        assert rs.best_reward >= oracle.quality(rs.best_architecture) - 0.05

    def test_no_feedback_adaptation(self, small_space):
        """RS proposals are identical regardless of rewards."""
        rs1 = RandomSearch(small_space, rng=5)
        rs2 = RandomSearch(small_space, rng=5)
        p1 = [rs1.ask() for _ in range(20)]
        for a in p1:
            rs1.tell(a, 1.0)
        p2 = []
        for _ in range(20):
            a = rs2.ask()
            p2.append(a)
            rs2.tell(a, -1.0)
        # Next proposals still agree.
        assert p1 == p2
        assert rs1.ask() == rs2.ask()

    def test_asynchronous_flag(self, small_space):
        assert RandomSearch(small_space).asynchronous


class TestAgingEvolution:
    def test_initial_phase_is_random(self, small_space):
        ae = AgingEvolution(small_space, rng=0, population_size=10,
                            sample_size=3)
        for _ in range(10):
            small_space.validate(ae.ask())

    def test_population_bounded(self, small_space, oracle):
        ae = AgingEvolution(small_space, rng=0, population_size=20,
                            sample_size=5)
        drive(ae, oracle, 100)
        assert len(ae.population) == 20

    def test_aging_evicts_oldest(self, small_space):
        ae = AgingEvolution(small_space, rng=0, population_size=3,
                            sample_size=2)
        archs = [ae.ask() for _ in range(4)]
        for i, a in enumerate(archs):
            ae.tell(a, float(i))
        # Oldest (reward 0) evicted, rewards 1..3 remain in order.
        assert ae.population_rewards == [1.0, 2.0, 3.0]

    def test_outperforms_random_on_smooth_landscape(self, small_space,
                                                    oracle):
        ae = drive(AgingEvolution(small_space, rng=1, population_size=30,
                                  sample_size=8), oracle, 400, eval_seed=2)
        rs = drive(RandomSearch(small_space, rng=1), oracle, 400,
                   eval_seed=2)
        # AE should find (near-)optimal true quality.
        assert oracle.quality(ae.best_architecture) >= \
            oracle.quality(rs.best_architecture) - 0.005

    def test_late_proposals_resemble_population(self, small_space, oracle):
        """After convergence, children are mutations of good parents."""
        ae = AgingEvolution(small_space, rng=3, population_size=15,
                            sample_size=5)
        drive(ae, oracle, 300)
        child = ae.ask()
        # Child is hamming-1 from some population member.
        dists = [sum(a != b for a, b in zip(child, member))
                 for member, _ in ae.population]
        assert min(dists) <= 1

    def test_tolerates_out_of_order_tells(self, small_space, oracle):
        """Fully asynchronous: many asks outstanding before any tell."""
        ae = AgingEvolution(small_space, rng=0, population_size=10,
                            sample_size=3)
        pending = [ae.ask() for _ in range(30)]
        rng = np.random.default_rng(0)
        for arch in reversed(pending):
            ae.tell(arch, oracle.observed_quality(arch, rng))
        assert ae.n_told == 30
        small_space.validate(ae.ask())

    def test_sample_size_validation(self, small_space):
        with pytest.raises(ValueError):
            AgingEvolution(small_space, population_size=5, sample_size=6)

    def test_repr(self, small_space):
        assert "AgingEvolution" in repr(AgingEvolution(small_space))
