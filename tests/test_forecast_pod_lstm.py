import numpy as np
import pytest

from repro.baselines import build_manual_lstm
from repro.forecast import PODLSTMEmulator
from repro.nn.training import Trainer


@pytest.fixture(scope="module")
def fitted_emulator(generator):
    """Small emulator trained briefly on 160 snapshots (module-scoped:
    training is the expensive part)."""
    snaps = generator.snapshots(np.arange(160))
    emulator = PODLSTMEmulator(
        n_modes=3, window=4,
        trainer=Trainer(epochs=25, batch_size=32, learning_rate=0.003))
    net = build_manual_lstm(16, 1, input_dim=3, output_dim=3, rng=0)
    emulator.fit(snaps, network=net, rng=0)
    return emulator, snaps


class TestFit:
    def test_history_recorded(self, fitted_emulator):
        emulator, _ = fitted_emulator
        assert emulator.history.n_epochs == 25
        assert np.isfinite(emulator.validation_r2)

    def test_learns_something(self, fitted_emulator):
        emulator, snaps = fitted_emulator
        assert emulator.score(snaps) > 0.3

    def test_default_network(self, generator):
        snaps = generator.snapshots(np.arange(40))
        emulator = PODLSTMEmulator(n_modes=2, window=3,
                                   trainer=Trainer(epochs=1, batch_size=16))
        emulator.fit(snaps, rng=0)
        assert emulator.network is not None

    def test_wrong_network_dim_rejected(self, generator):
        snaps = generator.snapshots(np.arange(40))
        emulator = PODLSTMEmulator(n_modes=2, window=3,
                                   trainer=Trainer(epochs=1))
        bad = build_manual_lstm(8, 1, input_dim=5, output_dim=5, rng=0)
        with pytest.raises(ValueError, match="input_dim"):
            emulator.fit(snaps, network=bad, rng=0)

    def test_use_before_fit(self, generator):
        emulator = PODLSTMEmulator()
        with pytest.raises(RuntimeError):
            emulator.predict_windows(np.zeros((1, 8, 5)))
        with pytest.raises(RuntimeError):
            emulator.validation_r2


class TestForecastSeries:
    def test_alignment(self, fitted_emulator):
        """Lead-h forecast of time index t comes from the window starting
        at t - K - h + 1; returned time indices must reflect that."""
        emulator, snaps = fitted_emulator
        k = emulator.pipeline.window
        for horizon in (1, k):
            times, pred, actual = emulator.forecast_coefficient_series(
                snaps, horizon=horizon)
            assert times[0] == k + horizon - 1
            assert times[-1] == snaps.shape[1] - k + horizon - 1
            assert pred.shape == actual.shape

    def test_actuals_match_pipeline_projection(self, fitted_emulator):
        emulator, snaps = fitted_emulator
        times, _, actual = emulator.forecast_coefficient_series(snaps, 1)
        raw = emulator.pipeline.coefficients(snaps)
        np.testing.assert_allclose(actual, raw[:, times], atol=1e-8)

    def test_all_horizons_finite_and_consistent(self, fitted_emulator):
        """Every lead produces finite predictions; note that in the
        paper's seq2seq formulation output position h-1 has seen h input
        steps, so lead-1 is the *least*-informed forecast, not the most
        (the flat-to-increasing rows of Table I reflect this)."""
        emulator, snaps = fitted_emulator
        k = emulator.pipeline.window
        sizes = []
        for horizon in range(1, k + 1):
            _, pred, actual = emulator.forecast_coefficient_series(
                snaps, horizon)
            assert np.isfinite(pred).all()
            sizes.append(pred.shape[1])
        assert len(set(sizes)) == 1  # same window count at every lead

    def test_invalid_horizon(self, fitted_emulator):
        emulator, snaps = fitted_emulator
        with pytest.raises(ValueError):
            emulator.forecast_coefficient_series(snaps, horizon=0)
        with pytest.raises(ValueError):
            emulator.forecast_coefficient_series(
                snaps, horizon=emulator.pipeline.window + 1)


class TestForecastFields:
    def test_field_shape(self, fitted_emulator, generator):
        emulator, snaps = fitted_emulator
        times, fields = emulator.forecast_fields(snaps, horizon=1)
        assert fields.shape == (generator.n_ocean, times.size)

    def test_fields_physical(self, fitted_emulator):
        emulator, snaps = fitted_emulator
        _, fields = emulator.forecast_fields(snaps, horizon=1)
        assert np.isfinite(fields).all()
        assert fields.min() > -20 and fields.max() < 50

    def test_forecast_error_bounded_by_truncation_plus_model(
            self, fitted_emulator, generator):
        """Field forecast RMSE is at least the POD truncation error but
        within a sane multiple of it."""
        emulator, snaps = fitted_emulator
        times, fields = emulator.forecast_fields(snaps, horizon=1)
        truth = snaps[:, times]
        rmse = np.sqrt(np.mean((fields - truth) ** 2))
        # Truncation-only reconstruction error:
        scaled = emulator.pipeline.transform(snaps[:, times])
        recon = emulator.pipeline.reconstruct(scaled)
        trunc = np.sqrt(np.mean((recon - truth) ** 2))
        assert rmse >= trunc * 0.9
        assert rmse <= trunc * 6.0


class TestScore:
    def test_score_in_range(self, fitted_emulator):
        emulator, snaps = fitted_emulator
        assert emulator.score(snaps) <= 1.0

    def test_score_on_new_period(self, fitted_emulator, generator):
        emulator, _ = fitted_emulator
        later = generator.snapshots(np.arange(160, 260))
        score = emulator.score(later)
        assert np.isfinite(score)
