import numpy as np
import pytest

from repro.nn.initializers import glorot_uniform, orthogonal, zeros


class TestGlorotUniform:
    def test_shape(self):
        assert glorot_uniform((10, 20), rng=0).shape == (10, 20)

    def test_bounds(self):
        w = glorot_uniform((50, 50), rng=0)
        limit = np.sqrt(6.0 / 100)
        assert np.abs(w).max() <= limit

    def test_reproducible(self):
        np.testing.assert_array_equal(glorot_uniform((5, 5), rng=3),
                                      glorot_uniform((5, 5), rng=3))

    def test_variance_scaling(self):
        # Larger fan -> tighter distribution.
        small = glorot_uniform((4, 4), rng=0).std()
        large = glorot_uniform((400, 400), rng=0).std()
        assert large < small

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            glorot_uniform((5,), rng=0)


class TestOrthogonal:
    @pytest.mark.parametrize("shape", [(8, 8), (8, 4), (4, 8)])
    def test_orthonormal_rows_or_columns(self, shape):
        w = orthogonal(shape, rng=0)
        assert w.shape == shape
        if shape[0] >= shape[1]:
            np.testing.assert_allclose(w.T @ w, np.eye(shape[1]), atol=1e-10)
        else:
            np.testing.assert_allclose(w @ w.T, np.eye(shape[0]), atol=1e-10)

    def test_reproducible(self):
        np.testing.assert_array_equal(orthogonal((6, 6), rng=1),
                                      orthogonal((6, 6), rng=1))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            orthogonal((2, 2, 2), rng=0)

    def test_norm_preserving(self, rng):
        w = orthogonal((16, 16), rng=0)
        x = rng.standard_normal(16)
        assert np.linalg.norm(x @ w) == pytest.approx(np.linalg.norm(x))


class TestZeros:
    def test_zeros(self):
        w = zeros((3, 4))
        assert w.shape == (3, 4)
        assert not w.any()
