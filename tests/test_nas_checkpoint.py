import numpy as np
import pytest

from repro.hpc import ThetaPartition, run_asynchronous_search
from repro.nas import (
    AgingEvolution,
    ArchitecturePerformanceModel,
    DistributedRL,
    RandomSearch,
    SurrogateEvaluator,
)
from repro.nas.checkpoint import (
    load_search,
    restore_search,
    save_search,
    search_state,
)


@pytest.fixture()
def oracle(small_space):
    return ArchitecturePerformanceModel(small_space, seed=0)


def warm_search(small_space, oracle, n=200):
    search = AgingEvolution(small_space, rng=0, population_size=15,
                            sample_size=5)
    rng = np.random.default_rng(1)
    for _ in range(n):
        arch = search.ask()
        search.tell(arch, oracle.observed_quality(arch, rng))
    return search


class TestCheckpointRoundtrip:
    def test_state_is_json_compatible(self, small_space, oracle):
        import json
        state = search_state(warm_search(small_space, oracle))
        json.dumps(state)  # must not raise

    def test_population_restored(self, small_space, oracle):
        search = warm_search(small_space, oracle)
        restored = restore_search(search_state(search), small_space,
                                  seed_on_resume=9)
        assert list(restored.population) == list(search.population)
        assert restored.best_reward == search.best_reward
        assert restored.best_architecture == search.best_architecture
        assert restored.n_asked == search.n_asked

    def test_file_roundtrip(self, small_space, oracle, tmp_path):
        search = warm_search(small_space, oracle)
        path = tmp_path / "search.json"
        save_search(search, path)
        restored = load_search(path, small_space, seed_on_resume=9)
        assert list(restored.population) == list(search.population)

    def test_random_search_roundtrip(self, small_space, tmp_path):
        rs = RandomSearch(small_space, rng=0)
        for _ in range(10):
            rs.tell(rs.ask(), 0.5)
        path = tmp_path / "rs.json"
        save_search(rs, path)
        restored = load_search(path, small_space, seed_on_resume=1)
        assert restored.n_told == 10
        assert restored.best_reward == 0.5

    def test_rl_rejected(self, small_space):
        rl = DistributedRL(small_space, rng=0, n_agents=2,
                           workers_per_agent=2)
        with pytest.raises(TypeError):
            search_state(rl)

    def test_unknown_algorithm_in_file(self, small_space, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"algorithm": "Quantum"}')
        with pytest.raises(ValueError, match="unknown algorithm"):
            load_search(path, small_space)


class TestResumeContinuesSearch:
    def test_resumed_search_keeps_improving(self, small_space, oracle,
                                            tmp_path):
        """Two half-length allocations ~ one full allocation."""
        search = warm_search(small_space, oracle, n=150)
        path = tmp_path / "ckpt.json"
        save_search(search, path)
        resumed = load_search(path, small_space, seed_on_resume=2)
        # Proposals come from the restored population, not cold-start
        # randoms: the ask counter is past the random-init phase.
        child = resumed.ask()
        dists = [sum(a != b for a, b in zip(child, member))
                 for member, _ in resumed.population]
        assert min(dists) <= 1
        rng = np.random.default_rng(3)
        for _ in range(150):
            arch = resumed.ask()
            resumed.tell(arch, oracle.observed_quality(arch, rng))
        assert resumed.best_reward >= search.best_reward

    def test_resume_on_simulated_cluster(self, small_space, oracle,
                                         tmp_path):
        """A killed allocation resumes on the DES and completes more work."""
        evaluator = SurrogateEvaluator(small_space, oracle)
        part = ThetaPartition(n_nodes=6, wall_seconds=1500.0)
        search = AgingEvolution(small_space, rng=0, population_size=10,
                                sample_size=3)
        t1 = run_asynchronous_search(search, evaluator, part, rng=1)
        save_search(search, tmp_path / "alloc1.json")
        resumed = load_search(tmp_path / "alloc1.json", small_space,
                              seed_on_resume=5)
        t2 = run_asynchronous_search(resumed, evaluator, part, rng=2)
        assert resumed.n_told == search.n_told + t2.n_evaluations
        assert resumed.best_reward >= search.best_reward
