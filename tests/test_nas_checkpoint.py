import numpy as np
import pytest

from repro.hpc import ThetaPartition, run_asynchronous_search
from repro.nas import (
    AgingEvolution,
    ArchitecturePerformanceModel,
    DistributedRL,
    RandomSearch,
    SurrogateEvaluator,
)
from repro.nas.checkpoint import (
    CHECKPOINT_VERSION,
    SEARCH_FORMAT,
    atomic_write_json,
    load_search,
    restore_search,
    save_search,
    search_state,
)


@pytest.fixture()
def oracle(small_space):
    return ArchitecturePerformanceModel(small_space, seed=0)


def warm_search(small_space, oracle, n=200):
    search = AgingEvolution(small_space, rng=0, population_size=15,
                            sample_size=5)
    rng = np.random.default_rng(1)
    for _ in range(n):
        arch = search.ask()
        search.tell(arch, oracle.observed_quality(arch, rng))
    return search


class TestCheckpointRoundtrip:
    def test_state_is_json_compatible(self, small_space, oracle):
        import json
        state = search_state(warm_search(small_space, oracle))
        json.dumps(state)  # must not raise

    def test_population_restored(self, small_space, oracle):
        search = warm_search(small_space, oracle)
        restored = restore_search(search_state(search), small_space,
                                  seed_on_resume=9)
        assert list(restored.population) == list(search.population)
        assert restored.best_reward == search.best_reward
        assert restored.best_architecture == search.best_architecture
        assert restored.n_asked == search.n_asked

    def test_file_roundtrip(self, small_space, oracle, tmp_path):
        search = warm_search(small_space, oracle)
        path = tmp_path / "search.json"
        save_search(search, path)
        restored = load_search(path, small_space, seed_on_resume=9)
        assert list(restored.population) == list(search.population)

    def test_random_search_roundtrip(self, small_space, tmp_path):
        rs = RandomSearch(small_space, rng=0)
        for _ in range(10):
            rs.tell(rs.ask(), 0.5)
        path = tmp_path / "rs.json"
        save_search(rs, path)
        restored = load_search(path, small_space, seed_on_resume=1)
        assert restored.n_told == 10
        assert restored.best_reward == 0.5

    def test_rl_roundtrip_exact(self, small_space, tmp_path):
        """DistributedRL checkpoints: policy logits, baseline, counters."""
        rl = DistributedRL(small_space, rng=0, n_agents=2,
                           workers_per_agent=2)
        rng = np.random.default_rng(4)
        rl.run_serial(lambda arch: float(rng.uniform()), n_rounds=3)
        path = tmp_path / "rl.json"
        save_search(rl, path)
        restored = load_search(path, small_space)
        assert restored.round_index == rl.round_index
        assert restored.n_told == rl.n_told
        for a, b in zip(restored.agents, rl.agents):
            for la, lb in zip(a.logits, b.logits):
                np.testing.assert_array_equal(la, lb)
            assert a.value_baseline == b.value_baseline
        # The restored policy proposes the bit-identical next round.
        assert restored.propose_round() == rl.propose_round()

    def test_unknown_algorithm_in_file(self, small_space, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"algorithm": "Quantum"}')
        with pytest.raises(ValueError, match="unknown algorithm"):
            load_search(path, small_space)

    def test_version_and_format_tagged(self, small_space, oracle):
        state = search_state(warm_search(small_space, oracle))
        assert state["format"] == SEARCH_FORMAT
        assert state["version"] == CHECKPOINT_VERSION

    def test_future_version_rejected(self, small_space, oracle):
        state = search_state(warm_search(small_space, oracle))
        state["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError, match="newer than supported"):
            restore_search(state, small_space)


class TestRngExactness:
    def test_restored_search_continues_bit_identically(self, small_space,
                                                       oracle, tmp_path):
        """Restore is NOT reseed: proposals continue the same bit-stream."""
        search = warm_search(small_space, oracle)
        path = tmp_path / "ckpt.json"
        save_search(search, path)
        restored = load_search(path, small_space)
        assert [restored.ask() for _ in range(20)] \
            == [search.ask() for _ in range(20)]

    def test_seed_on_resume_ignored_for_v2(self, small_space, oracle,
                                           tmp_path):
        search = warm_search(small_space, oracle)
        path = tmp_path / "ckpt.json"
        save_search(search, path)
        a = load_search(path, small_space, seed_on_resume=1)
        b = load_search(path, small_space, seed_on_resume=2)
        assert a.ask() == b.ask()


class TestNeverToldSearch:
    def test_minus_inf_roundtrip(self, small_space, tmp_path):
        """best_reward = -inf must survive a file round-trip as valid
        JSON (null), not the spec-violating -Infinity token."""
        search = AgingEvolution(small_space, rng=0, population_size=5,
                                sample_size=2)
        assert search.best_reward == -float("inf")
        path = tmp_path / "fresh.json"
        save_search(search, path)
        assert "Infinity" not in path.read_text()
        import json
        json.loads(path.read_text())  # strict-spec parse must succeed
        restored = load_search(path, small_space)
        assert restored.best_reward == -float("inf")
        assert restored.best_architecture is None


class TestLegacyV1:
    def test_v1_layout_still_loads(self, small_space, tmp_path):
        """Pre-versioning files (no format/version keys, no RNG state)
        load via the documented seed_on_resume fallback."""
        sampler = RandomSearch(small_space, rng=0)
        a1, a2 = list(sampler.ask()), list(sampler.ask())
        v1 = {"algorithm": "AgingEvolution", "population_size": 4,
              "sample_size": 2, "aging": True, "n_asked": 6, "n_told": 6,
              "best_reward": 0.75,
              "best_architecture": a1,
              "population": [[a1, 0.75], [a2, 0.5]]}
        path = tmp_path / "v1.json"
        atomic_write_json(path, v1)
        restored = load_search(path, small_space, seed_on_resume=9)
        assert restored.n_told == 6
        assert restored.best_reward == 0.75
        assert len(restored.population) == 2
        restored.ask()  # reseeded generator is usable


class TestAtomicWrite:
    def test_crash_mid_write_preserves_previous(self, tmp_path,
                                                monkeypatch):
        """A kill during save leaves the last good checkpoint intact."""
        import json

        import repro.nas.checkpoint as ckpt
        path = tmp_path / "state.json"
        atomic_write_json(path, {"generation": 1})

        real_replace = ckpt.os.replace

        def dying_replace(src, dst):
            raise OSError("killed before publish")

        monkeypatch.setattr(ckpt.os, "replace", dying_replace)
        with pytest.raises(OSError):
            atomic_write_json(path, {"generation": 2})
        assert json.loads(path.read_text()) == {"generation": 1}
        monkeypatch.setattr(ckpt.os, "replace", real_replace)
        atomic_write_json(path, {"generation": 2})
        assert json.loads(path.read_text()) == {"generation": 2}

    def test_nan_rejected_before_any_bytes_written(self, tmp_path):
        path = tmp_path / "state.json"
        atomic_write_json(path, {"ok": 1.0})
        with pytest.raises(ValueError):
            atomic_write_json(path, {"bad": float("nan")})
        import json
        assert json.loads(path.read_text()) == {"ok": 1.0}


class TestResumeContinuesSearch:
    def test_resumed_search_keeps_improving(self, small_space, oracle,
                                            tmp_path):
        """Two half-length allocations ~ one full allocation."""
        search = warm_search(small_space, oracle, n=150)
        path = tmp_path / "ckpt.json"
        save_search(search, path)
        resumed = load_search(path, small_space, seed_on_resume=2)
        # Proposals come from the restored population, not cold-start
        # randoms: the ask counter is past the random-init phase.
        child = resumed.ask()
        dists = [sum(a != b for a, b in zip(child, member))
                 for member, _ in resumed.population]
        assert min(dists) <= 1
        rng = np.random.default_rng(3)
        for _ in range(150):
            arch = resumed.ask()
            resumed.tell(arch, oracle.observed_quality(arch, rng))
        assert resumed.best_reward >= search.best_reward

    def test_resume_on_simulated_cluster(self, small_space, oracle,
                                         tmp_path):
        """A killed allocation resumes on the DES and completes more work."""
        evaluator = SurrogateEvaluator(small_space, oracle)
        part = ThetaPartition(n_nodes=6, wall_seconds=1500.0)
        search = AgingEvolution(small_space, rng=0, population_size=10,
                                sample_size=3)
        t1 = run_asynchronous_search(search, evaluator, part, rng=1)
        save_search(search, tmp_path / "alloc1.json")
        resumed = load_search(tmp_path / "alloc1.json", small_space,
                              seed_on_resume=5)
        t2 = run_asynchronous_search(resumed, evaluator, part, rng=2)
        assert resumed.n_told == search.n_told + t2.n_evaluations
        assert resumed.best_reward >= search.best_reward


class TestLegacyCampaignFixture:
    """A v2 campaign checkpoint written by the pre-fused-kernel tree
    (tests/data/) resumes under today's code and reproduces the exact
    recorded evaluation trajectory — rewards, timestamps, node
    placement and all."""

    def test_legacy_v2_campaign_resumes_bitwise(self, tmp_path):
        import json
        import shutil
        from pathlib import Path

        from repro.hpc import resume_search
        from repro.nas.space.ops import Operation
        from repro.nas.space.search_space import StackedLSTMSpace

        data = Path(__file__).parent / "data"
        expected = json.loads(
            (data / "legacy_campaign_expected.json").read_text())
        # resume_search consumes checkpoint state; work on a copy so the
        # committed fixture is never touched.
        ckpt = tmp_path / "campaign.json"
        shutil.copy(data / "legacy_campaign_v2.json", ckpt)
        ops = (Operation("identity"), Operation("lstm", 4),
               Operation("lstm", 8), Operation("lstm", 12))
        space = StackedLSTMSpace(n_layers=3, input_dim=3, output_dim=3,
                                 operations=ops, max_skip_depth=3)
        evaluator = SurrogateEvaluator(
            space, ArchitecturePerformanceModel(space, seed=0))
        _, tracker = resume_search(ckpt, space, evaluator)
        records = [[list(r.architecture), r.reward, r.start_time,
                    r.end_time, r.node] for r in tracker.records]
        assert records == expected["records"]
