import numpy as np
import pytest

from repro.nn import DenseLayer, IdentityLayer, LSTMLayer, Network
from repro.nn.layers import AddLayer


def simple_net(rng_seed=0):
    net = Network(input_dim=3, rng=rng_seed)
    net.add_node("l1", LSTMLayer(4), ["input"])
    net.add_node("out", LSTMLayer(2), ["l1"])
    return net


class TestConstruction:
    def test_duplicate_name(self):
        net = simple_net()
        with pytest.raises(ValueError, match="duplicate"):
            net.add_node("l1", IdentityLayer(), ["input"])

    def test_unknown_input(self):
        net = Network(input_dim=2, rng=0)
        with pytest.raises(ValueError, match="unknown input"):
            net.add_node("a", IdentityLayer(), ["missing"])

    def test_reserved_name(self):
        net = Network(input_dim=2, rng=0)
        with pytest.raises(ValueError, match="reserved"):
            net.add_node("input", IdentityLayer(), ["input"])

    def test_no_inputs_rejected(self):
        net = Network(input_dim=2, rng=0)
        with pytest.raises(ValueError, match="no inputs"):
            net.add_node("a", IdentityLayer(), [])

    def test_output_defaults_to_latest(self):
        net = simple_net()
        assert net.output_name == "out"

    def test_set_output(self):
        net = simple_net()
        net.set_output("l1")
        y = net.forward(np.zeros((1, 2, 3)))
        assert y.shape == (1, 2, 4)

    def test_set_output_unknown(self):
        with pytest.raises(ValueError):
            simple_net().set_output("nope")

    def test_node_dim(self):
        net = simple_net()
        assert net.node_dim("l1") == 4
        assert net.node_dim("input") == 3

    def test_topological_order_respects_edges(self):
        net = Network(input_dim=2, rng=0)
        net.add_node("a", LSTMLayer(3), ["input"])
        net.add_node("b", DenseLayer(3), ["input"])
        net.add_node("c", AddLayer(), ["a", "b"])
        order = net.topological_order
        assert order.index("c") > order.index("a")
        assert order.index("c") > order.index("b")

    def test_invalid_input_dim(self):
        with pytest.raises(ValueError):
            Network(input_dim=0)


class TestExecution:
    def test_forward_shape(self, rng):
        net = simple_net()
        assert net.forward(rng.standard_normal((4, 6, 3))).shape == (4, 6, 2)

    def test_wrong_feature_dim(self, rng):
        net = simple_net()
        with pytest.raises(ValueError, match="expected input"):
            net.forward(rng.standard_normal((4, 6, 5)))

    def test_deterministic_forward(self, rng):
        net = simple_net()
        x = rng.standard_normal((2, 4, 3))
        np.testing.assert_array_equal(net.forward(x), net.forward(x))

    def test_seed_controls_weights(self, rng):
        x = rng.standard_normal((1, 3, 3))
        y1 = simple_net(rng_seed=1).forward(x)
        y2 = simple_net(rng_seed=1).forward(x)
        y3 = simple_net(rng_seed=2).forward(x)
        np.testing.assert_array_equal(y1, y2)
        assert not np.allclose(y1, y3)

    def test_predict_chunked_matches_full(self, rng):
        net = simple_net()
        x = rng.standard_normal((10, 4, 3))
        np.testing.assert_allclose(net.predict(x, batch_size=3),
                                   net.predict(x), atol=1e-12)

    def test_predict_remainder_batch(self, rng):
        """A batch_size that does not divide the input runs a smaller
        final chunk and still returns every example, in order."""
        net = simple_net()
        x = rng.standard_normal((7, 4, 3))
        out = net.predict(x, batch_size=4)  # chunks of 4 and 3
        assert out.shape == net.predict(x).shape
        np.testing.assert_allclose(out[4:], net.predict(x[4:]),
                                   atol=1e-12)
        np.testing.assert_array_equal(out[:4], net.predict(x[:4]))

    def test_predict_empty_input_rejected(self):
        net = simple_net()
        with pytest.raises(ValueError, match="empty batch"):
            net.predict(np.zeros((0, 4, 3)))
        with pytest.raises(ValueError, match="0 examples"):
            net.predict(np.zeros((0, 4, 3)), batch_size=2)

    def test_predict_bad_batch_size_rejected(self, rng):
        net = simple_net()
        x = rng.standard_normal((4, 4, 3))
        with pytest.raises(ValueError, match="batch_size"):
            net.predict(x, batch_size=0)

    def test_dead_branch_ignored_in_backward(self, rng):
        """A node not feeding the output gets no gradient and must not
        break backward."""
        net = Network(input_dim=2, rng=0)
        net.add_node("main", LSTMLayer(3), ["input"])
        net.add_node("dead", DenseLayer(5), ["input"])
        net.set_output("main")
        x = rng.standard_normal((2, 3, 2))
        net.forward(x, training=True)
        net.zero_grads()
        net.backward(np.ones((2, 3, 3)))
        dead = net.layer("dead")
        assert not dead.grads["W"].any()


class TestParameters:
    def test_n_parameters(self):
        net = simple_net()
        expected = 4 * ((3 + 4) * 4 + 4) + 4 * ((4 + 2) * 2 + 2)
        assert net.n_parameters == expected

    def test_get_set_weights_roundtrip(self, rng):
        net = simple_net()
        x = rng.standard_normal((2, 3, 3))
        before = net.forward(x)
        weights = net.get_weights()
        for p, _ in net.parameters_and_gradients():
            p += 1.0
        assert not np.allclose(net.forward(x), before)
        net.set_weights(weights)
        np.testing.assert_allclose(net.forward(x), before)

    def test_set_weights_count_mismatch(self):
        net = simple_net()
        with pytest.raises(ValueError):
            net.set_weights([np.zeros((2, 2))])

    def test_set_weights_shape_mismatch(self):
        net = simple_net()
        weights = net.get_weights()
        weights[0] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.set_weights(weights)

    def test_zero_grads(self, rng):
        net = simple_net()
        x = rng.standard_normal((2, 3, 3))
        net.forward(x, training=True)
        net.backward(np.ones((2, 3, 2)))
        net.zero_grads()
        assert all(not g.any() for _, g in net.parameters_and_gradients())

    def test_summary_mentions_nodes(self):
        text = simple_net().summary()
        assert "l1" in text and "out" in text and "LSTMLayer" in text
