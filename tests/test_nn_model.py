import numpy as np
import pytest

from repro.nn import DenseLayer, IdentityLayer, LSTMLayer, Network
from repro.nn.layers import AddLayer


def simple_net(rng_seed=0):
    net = Network(input_dim=3, rng=rng_seed)
    net.add_node("l1", LSTMLayer(4), ["input"])
    net.add_node("out", LSTMLayer(2), ["l1"])
    return net


class TestConstruction:
    def test_duplicate_name(self):
        net = simple_net()
        with pytest.raises(ValueError, match="duplicate"):
            net.add_node("l1", IdentityLayer(), ["input"])

    def test_unknown_input(self):
        net = Network(input_dim=2, rng=0)
        with pytest.raises(ValueError, match="unknown input"):
            net.add_node("a", IdentityLayer(), ["missing"])

    def test_reserved_name(self):
        net = Network(input_dim=2, rng=0)
        with pytest.raises(ValueError, match="reserved"):
            net.add_node("input", IdentityLayer(), ["input"])

    def test_no_inputs_rejected(self):
        net = Network(input_dim=2, rng=0)
        with pytest.raises(ValueError, match="no inputs"):
            net.add_node("a", IdentityLayer(), [])

    def test_output_defaults_to_latest(self):
        net = simple_net()
        assert net.output_name == "out"

    def test_set_output(self):
        net = simple_net()
        net.set_output("l1")
        y = net.forward(np.zeros((1, 2, 3)))
        assert y.shape == (1, 2, 4)

    def test_set_output_unknown(self):
        with pytest.raises(ValueError):
            simple_net().set_output("nope")

    def test_node_dim(self):
        net = simple_net()
        assert net.node_dim("l1") == 4
        assert net.node_dim("input") == 3

    def test_topological_order_respects_edges(self):
        net = Network(input_dim=2, rng=0)
        net.add_node("a", LSTMLayer(3), ["input"])
        net.add_node("b", DenseLayer(3), ["input"])
        net.add_node("c", AddLayer(), ["a", "b"])
        order = net.topological_order
        assert order.index("c") > order.index("a")
        assert order.index("c") > order.index("b")

    def test_invalid_input_dim(self):
        with pytest.raises(ValueError):
            Network(input_dim=0)


class TestExecution:
    def test_forward_shape(self, rng):
        net = simple_net()
        assert net.forward(rng.standard_normal((4, 6, 3))).shape == (4, 6, 2)

    def test_wrong_feature_dim(self, rng):
        net = simple_net()
        with pytest.raises(ValueError, match="expected input"):
            net.forward(rng.standard_normal((4, 6, 5)))

    def test_deterministic_forward(self, rng):
        net = simple_net()
        x = rng.standard_normal((2, 4, 3))
        np.testing.assert_array_equal(net.forward(x), net.forward(x))

    def test_seed_controls_weights(self, rng):
        x = rng.standard_normal((1, 3, 3))
        y1 = simple_net(rng_seed=1).forward(x)
        y2 = simple_net(rng_seed=1).forward(x)
        y3 = simple_net(rng_seed=2).forward(x)
        np.testing.assert_array_equal(y1, y2)
        assert not np.allclose(y1, y3)

    def test_predict_chunked_matches_full(self, rng):
        net = simple_net()
        x = rng.standard_normal((10, 4, 3))
        np.testing.assert_allclose(net.predict(x, batch_size=3),
                                   net.predict(x), atol=1e-12)

    def test_predict_remainder_batch(self, rng):
        """A batch_size that does not divide the input runs a smaller
        final chunk and still returns every example, in order."""
        net = simple_net()
        x = rng.standard_normal((7, 4, 3))
        out = net.predict(x, batch_size=4)  # chunks of 4 and 3
        assert out.shape == net.predict(x).shape
        np.testing.assert_allclose(out[4:], net.predict(x[4:]),
                                   atol=1e-12)
        np.testing.assert_array_equal(out[:4], net.predict(x[:4]))

    def test_predict_empty_input_rejected(self):
        net = simple_net()
        with pytest.raises(ValueError, match="empty batch"):
            net.predict(np.zeros((0, 4, 3)))
        with pytest.raises(ValueError, match="0 examples"):
            net.predict(np.zeros((0, 4, 3)), batch_size=2)

    def test_predict_bad_batch_size_rejected(self, rng):
        net = simple_net()
        x = rng.standard_normal((4, 4, 3))
        with pytest.raises(ValueError, match="batch_size"):
            net.predict(x, batch_size=0)

    def test_dead_branch_ignored_in_backward(self, rng):
        """A node not feeding the output gets no gradient and must not
        break backward."""
        net = Network(input_dim=2, rng=0)
        net.add_node("main", LSTMLayer(3), ["input"])
        net.add_node("dead", DenseLayer(5), ["input"])
        net.set_output("main")
        x = rng.standard_normal((2, 3, 2))
        net.forward(x, training=True)
        net.zero_grads()
        net.backward(np.ones((2, 3, 3)))
        dead = net.layer("dead")
        assert not dead.grads["W"].any()


class TestParameters:
    def test_n_parameters(self):
        net = simple_net()
        expected = 4 * ((3 + 4) * 4 + 4) + 4 * ((4 + 2) * 2 + 2)
        assert net.n_parameters == expected

    def test_get_set_weights_roundtrip(self, rng):
        net = simple_net()
        x = rng.standard_normal((2, 3, 3))
        before = net.forward(x)
        weights = net.get_weights()
        for p, _ in net.parameters_and_gradients():
            p += 1.0
        assert not np.allclose(net.forward(x), before)
        net.set_weights(weights)
        np.testing.assert_allclose(net.forward(x), before)

    def test_set_weights_count_mismatch(self):
        net = simple_net()
        with pytest.raises(ValueError):
            net.set_weights([np.zeros((2, 2))])

    def test_set_weights_shape_mismatch(self):
        net = simple_net()
        weights = net.get_weights()
        weights[0] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.set_weights(weights)

    def test_zero_grads(self, rng):
        net = simple_net()
        x = rng.standard_normal((2, 3, 3))
        net.forward(x, training=True)
        net.backward(np.ones((2, 3, 2)))
        net.zero_grads()
        assert all(not g.any() for _, g in net.parameters_and_gradients())

    def test_summary_mentions_nodes(self):
        text = simple_net().summary()
        assert "l1" in text and "out" in text and "LSTMLayer" in text


def diamond_net(parallel=False, rng_seed=5):
    """input -> a -> {b1, b2} -> merge -> out: two branches with no
    edge between them — the canonical concurrency opportunity."""
    from repro.nn.layers import GRULayer, SimpleRNNLayer
    net = Network(input_dim=3, rng=rng_seed, parallel=parallel)
    net.add_node("a", LSTMLayer(4), ["input"])
    net.add_node("b1", GRULayer(4), ["a"])
    net.add_node("b2", SimpleRNNLayer(4), ["a"])
    net.add_node("merge", AddLayer("relu"), ["b1", "b2"])
    net.add_node("out", DenseLayer(3), ["merge"])
    net.set_output("out")
    return net


class TestTopologyAnalysis:
    def test_diamond_topological_sort(self):
        """Insertion order is adversarial here (merge consumers exist
        before both producers in no order); the sort must still place
        every node after all of its inputs."""
        net = diamond_net()
        order = net.topological_order
        assert set(order) == {"a", "b1", "b2", "merge", "out"}
        position = {name: i for i, name in enumerate(order)}
        for name in order:
            for dep in net._specs[name].inputs:
                if dep != "input":
                    assert position[dep] < position[name], \
                        f"{dep} must precede {name}"
        assert order[0] == "a" and order[-1] == "out"

    def test_diamond_live_spans(self):
        """Each value's span ends at its last consumer; the output is
        pinned alive to the end."""
        net = diamond_net()
        order = net.topological_order
        spans = net.live_spans()
        position = {name: i for i, name in enumerate(order)}
        # 'a' feeds b1 and b2 -> dies after the later of the two.
        assert spans["a"] == max(position["b1"], position["b2"])
        assert spans["b1"] == spans["b2"] == position["merge"]
        assert spans["merge"] == position["out"]
        assert spans["out"] == len(order) - 1      # pinned: the output
        assert spans["input"] == position["a"]

    def test_live_spans_linear_chain(self):
        net = simple_net()
        spans = net.live_spans()
        assert spans == {"input": 0, "l1": 1, "out": 1}


class TestParallelExecution:
    def test_parallel_forward_bitwise_equals_serial(self, rng):
        x = rng.standard_normal((4, 6, 3))
        serial = diamond_net(parallel=False)
        parallel = diamond_net(parallel=True)
        parallel.set_weights(serial.get_weights())
        want = serial.forward(x)
        got = parallel.forward(x)
        np.testing.assert_array_equal(got.view(np.uint8),
                                      want.view(np.uint8))

    def test_parallel_training_step_bitwise(self, rng):
        """training=True forward + backward under the parallel
        scheduler produce bit-identical gradients (backward itself is
        serial; the parallel forward must leave identical caches)."""
        x = rng.standard_normal((3, 5, 3))
        grad = rng.standard_normal((3, 5, 3))
        serial = diamond_net(parallel=False)
        parallel = diamond_net(parallel=True)
        parallel.set_weights(serial.get_weights())
        for net in (serial, parallel):
            net.forward(x, training=True)
            net.zero_grads()
        dx_s = serial.backward(grad)
        dx_p = parallel.backward(grad)
        np.testing.assert_array_equal(dx_s, dx_p)
        for (_, gs), (_, gp) in zip(serial.parameters_and_gradients(),
                                    parallel.parameters_and_gradients(),
                                    strict=True):
            np.testing.assert_array_equal(gs, gp)

    def test_parallel_repeated_runs_stable(self, rng):
        net = diamond_net(parallel=True)
        x = rng.standard_normal((2, 4, 3))
        first = net.forward(x)
        for _ in range(5):
            np.testing.assert_array_equal(net.forward(x), first)

    def test_parallel_worker_count_validation(self):
        with pytest.raises(ValueError, match="parallel"):
            Network(input_dim=3, parallel=-1)
        with pytest.raises(ValueError, match="parallel"):
            Network(input_dim=3, parallel=0)

    def test_parallel_int_pins_worker_count(self, rng):
        net = diamond_net(parallel=2)
        serial = diamond_net(parallel=False)
        net.set_weights(serial.get_weights())
        x = rng.standard_normal((2, 3, 3))
        np.testing.assert_array_equal(net.forward(x), serial.forward(x))

    def test_parallel_worker_error_propagates(self):
        net = diamond_net(parallel=True)
        with pytest.raises(ValueError, match="expected input"):
            net.forward(np.zeros((2, 3, 7)))

    def test_parallel_network_pickles_without_executor(self, rng):
        import pickle
        net = diamond_net(parallel=True)
        x = rng.standard_normal((2, 3, 3))
        want = net.forward(x)  # instantiates the executor
        clone = pickle.loads(pickle.dumps(net))
        assert clone.parallel is True
        np.testing.assert_array_equal(clone.forward(x), want)

    def test_parallel_batch_invariant_propagates_to_workers(self, rng):
        """detmath mode is thread-local; the scheduler must re-enter
        the caller's mode inside every worker thread."""
        from repro.nn.detmath import batch_invariant
        x = rng.standard_normal((1, 4, 3))
        serial = diamond_net(parallel=False)
        parallel = diamond_net(parallel=True)
        parallel.set_weights(serial.get_weights())
        with batch_invariant():
            want = serial.forward(x)
            got = parallel.forward(x)
        np.testing.assert_array_equal(got.view(np.uint8),
                                      want.view(np.uint8))

    def test_parallel_obs_counters(self, rng):
        from repro import obs
        obs.enable()
        net = diamond_net(parallel=True)
        net.forward(rng.standard_normal((2, 3, 3)))
        registry = obs.get_registry()
        assert registry.counters["nn/dag_parallel_runs"].value == 1
        assert registry.counters["nn/dag_parallel_nodes"].value == 5
        assert registry.gauges["nn/dag_parallel_max_ready"].last >= 2
