import datetime as dt

import pytest

from repro.data.calendar import WeeklyCalendar


class TestDefaults:
    def test_paper_archive_size(self):
        cal = WeeklyCalendar()
        assert cal.n_snapshots == 1914
        assert cal.start == dt.date(1981, 10, 22)

    def test_paper_train_test_split(self):
        # Paper: 427 training snapshots (through 1989), 1,487 test.
        cal = WeeklyCalendar()
        split = cal.train_test_split_index()
        assert split == 427
        assert cal.n_snapshots - split == 1487

    def test_split_boundary_dates(self):
        cal = WeeklyCalendar()
        split = cal.train_test_split_index()
        # Last training week lies wholly in 1989; the first test week
        # reaches into 1990 (a straddling week is not pure training data).
        assert (cal.date_of(split - 1) + dt.timedelta(days=6)).year == 1989
        assert (cal.date_of(split) + dt.timedelta(days=6)).year == 1990

    def test_end_date_matches_paper(self):
        # Archive runs to mid-2018.
        end = WeeklyCalendar().end
        assert end.year == 2018
        assert 5 <= end.month <= 7


class TestDateArithmetic:
    def test_date_of_zero(self):
        assert WeeklyCalendar().date_of(0) == dt.date(1981, 10, 22)

    def test_date_of_one_week_later(self):
        assert WeeklyCalendar().date_of(1) == dt.date(1981, 10, 29)

    def test_negative_index(self):
        cal = WeeklyCalendar()
        assert cal.date_of(-1) == cal.date_of(cal.n_snapshots - 1)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            WeeklyCalendar().date_of(1914)

    def test_index_of_roundtrip(self):
        cal = WeeklyCalendar()
        for idx in (0, 1, 100, 1913):
            assert cal.index_of(cal.date_of(idx)) == idx

    def test_index_of_mid_week(self):
        cal = WeeklyCalendar()
        assert cal.index_of(dt.date(1981, 10, 25)) == 0

    def test_index_of_before_start(self):
        with pytest.raises(ValueError, match="precedes"):
            WeeklyCalendar().index_of(dt.date(1981, 1, 1))

    def test_index_of_after_end(self):
        with pytest.raises(ValueError, match="after"):
            WeeklyCalendar().index_of(dt.date(2030, 1, 1))


class TestIndicesBetween:
    def test_assessment_window_size(self):
        # Paper Table I window: 2015-04-05 .. 2018-06-24 (~168 weeks).
        cal = WeeklyCalendar()
        rng = cal.indices_between(dt.date(2015, 4, 5), dt.date(2018, 6, 24))
        assert 160 <= len(rng) <= 172

    def test_single_week(self):
        cal = WeeklyCalendar()
        d = cal.date_of(100)
        rng = cal.indices_between(d, d)
        assert list(rng) == [100]

    def test_inverted_range_rejected(self):
        cal = WeeklyCalendar()
        with pytest.raises(ValueError, match="precedes"):
            cal.indices_between(dt.date(2000, 1, 2), dt.date(2000, 1, 1))

    def test_clamped_to_archive(self):
        cal = WeeklyCalendar(n_snapshots=10)
        rng = cal.indices_between(dt.date(1981, 1, 1), dt.date(2030, 1, 1))
        assert rng.start == 0 and rng.stop == 10


class TestValidation:
    def test_nonpositive_snapshots(self):
        with pytest.raises(ValueError):
            WeeklyCalendar(n_snapshots=0)

    def test_cutoff_before_start(self):
        assert WeeklyCalendar().train_test_split_index(1980) == 0

    def test_cutoff_after_end_clamps(self):
        cal = WeeklyCalendar(n_snapshots=10)
        assert cal.train_test_split_index(2030) == 10
