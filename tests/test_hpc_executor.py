import numpy as np
import pytest

from repro.hpc import (
    ClusterConfig,
    ThetaPartition,
    run_asynchronous_search,
    run_search,
    run_synchronous_rl_search,
)
from repro.nas import (
    AgingEvolution,
    ArchitecturePerformanceModel,
    DistributedRL,
    RandomSearch,
    SurrogateEvaluator,
)


@pytest.fixture()
def evaluator(small_space):
    model = ArchitecturePerformanceModel(small_space, seed=0)
    return SurrogateEvaluator(small_space, model)


PARTITION = ThetaPartition(n_nodes=12, wall_seconds=2000.0)


class TestAsynchronousExecutor:
    def test_runs_and_counts(self, small_space, evaluator):
        rs = RandomSearch(small_space, rng=0)
        tracker = run_asynchronous_search(rs, evaluator, PARTITION, rng=0)
        assert tracker.n_evaluations > 0
        assert rs.n_told == tracker.n_evaluations

    def test_utilization_high_without_barriers(self, small_space, evaluator):
        rs = RandomSearch(small_space, rng=0)
        tracker = run_asynchronous_search(rs, evaluator, PARTITION, rng=0)
        assert tracker.node_utilization() > 0.8

    def test_perfect_utilization_without_overhead(self, small_space,
                                                  evaluator):
        rs = RandomSearch(small_space, rng=0)
        cluster = ClusterConfig(launch_overhead_mean=0.0)
        tracker = run_asynchronous_search(rs, evaluator, PARTITION,
                                          cluster=cluster, rng=0)
        assert tracker.node_utilization() > 0.99

    def test_deterministic(self, small_space):
        def run():
            model = ArchitecturePerformanceModel(small_space, seed=0)
            ev = SurrogateEvaluator(small_space, model)
            ae = AgingEvolution(small_space, rng=3, population_size=10,
                                sample_size=3)
            return run_asynchronous_search(ae, ev, PARTITION, rng=5)

        t1, t2 = run(), run()
        assert t1.n_evaluations == t2.n_evaluations
        assert [r.reward for r in t1.records] == \
            [r.reward for r in t2.records]

    def test_evaluations_fit_inside_wall(self, small_space, evaluator):
        rs = RandomSearch(small_space, rng=0)
        tracker = run_asynchronous_search(rs, evaluator, PARTITION, rng=0)
        assert all(r.end_time <= PARTITION.wall_seconds
                   for r in tracker.records)

    def test_rejects_synchronous_algorithm(self, small_space, evaluator):
        rl = DistributedRL(small_space, rng=0, n_agents=2,
                           workers_per_agent=2)
        with pytest.raises(ValueError):
            run_asynchronous_search(rl, evaluator, PARTITION)


class TestSynchronousExecutor:
    def make_rl(self, small_space, n_nodes=12, n_agents=2):
        from repro.hpc.theta import rl_node_allocation
        wpa = rl_node_allocation(n_nodes, n_agents).workers_per_agent
        return DistributedRL(small_space, rng=0, n_agents=n_agents,
                             workers_per_agent=wpa)

    def test_runs_rounds(self, small_space, evaluator):
        rl = self.make_rl(small_space)
        tracker = run_synchronous_rl_search(rl, evaluator, PARTITION, rng=1)
        assert tracker.n_evaluations > 0
        # Complete rounds only: multiples of total worker count.
        assert rl.round_index >= 1

    def test_utilization_below_asynchronous(self, small_space, evaluator):
        rl = self.make_rl(small_space)
        sync_tracker = run_synchronous_rl_search(rl, evaluator, PARTITION,
                                                 rng=1)
        rs = RandomSearch(small_space, rng=0)
        async_tracker = run_asynchronous_search(rs, evaluator, PARTITION,
                                                rng=1)
        assert sync_tracker.node_utilization() < \
            async_tracker.node_utilization()

    def test_fewer_evaluations_than_asynchronous(self, small_space,
                                                 evaluator):
        rl = self.make_rl(small_space)
        sync_tracker = run_synchronous_rl_search(rl, evaluator, PARTITION,
                                                 rng=1)
        rs = RandomSearch(small_space, rng=0)
        async_tracker = run_asynchronous_search(rs, evaluator, PARTITION,
                                                rng=1)
        assert sync_tracker.n_evaluations < async_tracker.n_evaluations

    def test_allocation_mismatch_rejected(self, small_space, evaluator):
        rl = DistributedRL(small_space, rng=0, n_agents=2,
                           workers_per_agent=99)
        with pytest.raises(ValueError, match="workers/agent"):
            run_synchronous_rl_search(rl, evaluator, PARTITION)

    def test_rejects_asynchronous_algorithm(self, small_space, evaluator):
        rs = RandomSearch(small_space, rng=0)
        with pytest.raises(ValueError):
            run_synchronous_rl_search(rs, evaluator, PARTITION)


class TestRunSearchDispatch:
    def test_dispatches_async(self, small_space, evaluator):
        tracker = run_search(RandomSearch(small_space, rng=0), evaluator,
                             PARTITION, rng=0)
        assert tracker.n_evaluations > 0

    def test_dispatches_sync(self, small_space, evaluator):
        from repro.hpc.theta import rl_node_allocation
        wpa = rl_node_allocation(12, 2).workers_per_agent
        rl = DistributedRL(small_space, rng=0, n_agents=2,
                           workers_per_agent=wpa)
        tracker = run_search(rl, evaluator, PARTITION, rng=0)
        assert tracker.n_evaluations > 0

    def test_unknown_synchronous_type(self, small_space, evaluator):
        class Fake:
            asynchronous = False

        with pytest.raises(TypeError):
            run_search(Fake(), evaluator, PARTITION)


class TestClusterConfig:
    def test_overhead_mean_preserving(self):
        cfg = ClusterConfig(launch_overhead_mean=10.0,
                            launch_overhead_sigma=0.5)
        rng = np.random.default_rng(0)
        draws = [cfg.sample_launch_overhead(rng) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(10.0, rel=0.05)

    def test_zero_overhead(self):
        cfg = ClusterConfig(launch_overhead_mean=0.0)
        assert cfg.sample_launch_overhead(np.random.default_rng(0)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(launch_overhead_mean=-1.0)
        with pytest.raises(ValueError):
            ClusterConfig(rl_update_seconds=-1.0)
