"""Differential correctness of the sharded router (repro.serve.router).

The router's contract is the engine's contract, preserved across every
boundary it adds (framing, sharding, worker processes): a routed
response is **bitwise identical** to forecasting the same window
serially, one at a time, with no serving stack at all — at any worker
count, and across a mid-stream zero-downtime promote, where each
response's ``(generation, version)`` tag identifies exactly which
bundle it must match.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import ModelRegistry
from repro.serve.router import ForecastRouter, RouterClient


@pytest.fixture(scope="module")
def windows(tiny_emulator, generator):
    """24 real request windows in scaled coefficient space."""
    snaps = generator.snapshots(np.arange(60))
    return tiny_emulator.pipeline.windows_from_snapshots(snaps).inputs[:24]


@pytest.fixture(scope="module")
def emulator_v2(generator):
    """A second, genuinely different bundle for promote tests."""
    from repro.forecast import PODLSTMEmulator
    from repro.nn import Trainer
    snapshots = generator.snapshots(np.arange(60))
    emulator = PODLSTMEmulator(n_modes=3, window=4,
                               trainer=Trainer(epochs=2, batch_size=16))
    emulator.fit(snapshots, rng=7)
    return emulator


@pytest.fixture(scope="module")
def registry_root(tiny_emulator, emulator_v2, tmp_path_factory):
    """A registry with v1 ACTIVE and v2 published but not promoted."""
    root = tmp_path_factory.mktemp("router-registry")
    registry = ModelRegistry(root)
    registry.publish("v1", tiny_emulator, activate=True)
    registry.publish("v2", emulator_v2)
    return root


@pytest.fixture(scope="module")
def serial_v1(tiny_emulator, windows):
    """The reference: every window forecast serially, no serving stack."""
    return [tiny_emulator.predict_windows(w[None])[0] for w in windows]


@pytest.fixture(scope="module")
def serial_v2(emulator_v2, windows):
    return [emulator_v2.predict_windows(w[None])[0] for w in windows]


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_bitwise_equivalence_at_any_worker_count(
        registry_root, windows, serial_v1, n_workers):
    with ForecastRouter(registry_root, n_workers=n_workers) as router:
        with RouterClient(router.address) as client:
            routed = [client.forecast(w) for w in windows]
    for response, reference in zip(routed, serial_v1):
        assert response.output.tobytes() == reference.tobytes()
        assert response.generation == 1
        assert response.version == "v1"
    if n_workers > 1:
        # The pool genuinely shards: more than one worker answered.
        assert len({r.worker_id for r in routed}) > 1


def test_concurrent_clients_stay_bitwise(registry_root, windows,
                                         serial_v1):
    """Six concurrent closed-loop clients, interleaved batching across
    two shards — every response still bitwise-matches its serial
    reference."""
    with ForecastRouter(registry_root, n_workers=2) as router:
        address = router.address
        failures: list[str] = []

        def client_loop(offset: int) -> None:
            with RouterClient(address) as client:
                for i in range(len(windows)):
                    index = (offset + i) % len(windows)
                    routed = client.forecast(windows[index])
                    if routed.output.tobytes() \
                            != serial_v1[index].tobytes():
                        failures.append(
                            f"client {offset} window {index}")
        threads = [threading.Thread(target=client_loop, args=(i * 4,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads)
    assert failures == []


def test_promote_mid_stream_each_generation_matches_its_bundle(
        registry_root, windows, serial_v1, serial_v2):
    """A client hammering the router across a promote sees only
    responses that bitwise-match the bundle named by their own
    ``(generation, version)`` tag — before, during and after the swap —
    and the stream ends on generation 2."""
    registry = ModelRegistry(registry_root)
    registry.promote("v1")  # reset ACTIVE (module fixtures are shared)
    with ForecastRouter(registry_root, n_workers=2) as router:
        address = router.address
        observed: list[tuple[int, int, str, bytes]] = []
        stop = threading.Event()

        def hammer() -> None:
            with RouterClient(address) as client:
                i = 0
                while not stop.is_set():
                    index = i % len(windows)
                    routed = client.forecast(windows[index])
                    observed.append((index, routed.generation,
                                     routed.version,
                                     routed.output.tobytes()))
                    i += 1

        thread = threading.Thread(target=hammer)
        with RouterClient(address) as probe:
            before = probe.forecast(windows[0])
            assert before.generation == 1 and before.version == "v1"
            thread.start()
            router.promote("v2")
            after = probe.forecast(windows[0])
            stop.set()
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            assert after.generation == 2 and after.version == "v2"
            assert after.output.tobytes() == serial_v2[0].tobytes()
    assert registry.active() == "v2"
    references = {(1, "v1"): serial_v1, (2, "v2"): serial_v2}
    for index, generation, version, payload in observed:
        assert (generation, version) in references, \
            f"torn response tag ({generation}, {version!r})"
        assert payload == references[(generation, version)][index].tobytes()
    registry.promote("v1")  # leave the shared registry as found


def test_sharding_routes_repeats_to_the_same_worker(registry_root,
                                                    windows):
    """Identical windows land on the same shard (that is what makes the
    sharded cache coherent), and the router's shard prediction matches
    what actually serves the request."""
    with ForecastRouter(registry_root, n_workers=4) as router:
        with RouterClient(router.address) as client:
            for window in windows[:8]:
                expected = router.shard_for(window)
                workers = {client.forecast(window).worker_id
                           for _ in range(3)}
                assert workers == {expected}


def test_router_requires_an_active_version(tmp_path):
    ModelRegistry(tmp_path)  # empty registry, no ACTIVE
    router = ForecastRouter(tmp_path, n_workers=1)
    with pytest.raises(ValueError, match="no active version"):
        router.start()
