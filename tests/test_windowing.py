import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.windowing import (
    WindowedExamples,
    make_windowed_examples,
    train_validation_split,
    upsample_series,
)


def _ramp_series(n_modes: int = 2, n_time: int = 30) -> np.ndarray:
    """coefficients[m, t] = 100*m + t — easy to check window contents."""
    return (100.0 * np.arange(n_modes)[:, None]
            + np.arange(n_time)[None, :]).astype(np.float64)


class TestMakeWindowedExamples:
    def test_count_stride_one(self):
        ex = make_windowed_examples(_ramp_series(n_time=30), window=4)
        assert ex.n_examples == 30 - 8 + 1

    def test_paper_count(self):
        # Paper geometry: Ns=427, K=8, stride 1 -> 412 raw examples.
        coeff = np.zeros((5, 427))
        coeff[0] = np.arange(427)
        ex = make_windowed_examples(coeff, window=8)
        assert ex.n_examples == 412

    def test_window_contents(self):
        ex = make_windowed_examples(_ramp_series(), window=3)
        # first example: inputs times 0..2, outputs times 3..5 for mode 0
        np.testing.assert_allclose(ex.inputs[0, :, 0], [0, 1, 2])
        np.testing.assert_allclose(ex.outputs[0, :, 0], [3, 4, 5])
        # mode 1 offsets by 100
        np.testing.assert_allclose(ex.inputs[0, :, 1], [100, 101, 102])

    def test_outputs_follow_inputs(self):
        ex = make_windowed_examples(_ramp_series(), window=4)
        # output window of example s starts where input window ends
        np.testing.assert_allclose(ex.outputs[:, 0, 0],
                                   ex.inputs[:, -1, 0] + 1.0)

    def test_stride(self):
        ex = make_windowed_examples(_ramp_series(n_time=30), window=4,
                                    stride=3)
        assert ex.n_examples == len(range(0, 30 - 8 + 1, 3))
        np.testing.assert_allclose(ex.inputs[1, 0, 0], 3.0)

    def test_too_short_series(self):
        with pytest.raises(ValueError, match="at least"):
            make_windowed_examples(_ramp_series(n_time=7), window=4)

    def test_exactly_one_window(self):
        ex = make_windowed_examples(_ramp_series(n_time=8), window=4)
        assert ex.n_examples == 1

    def test_upsample_reproduces_paper_example_count(self):
        coeff = np.zeros((5, 427))
        coeff[0] = np.sin(np.arange(427) / 5.0)
        ex = make_windowed_examples(coeff, window=8, upsample=1126 / 427)
        # Paper reports 1,111 examples.
        assert abs(ex.n_examples - 1111) <= 2


class TestUpsampleSeries:
    def test_length(self):
        out = upsample_series(_ramp_series(n_time=10), 2.0)
        assert out.shape == (2, 20)

    def test_endpoint_preserved(self):
        series = _ramp_series(n_time=10)
        out = upsample_series(series, 2.0)
        np.testing.assert_allclose(out[:, 0], series[:, 0])
        np.testing.assert_allclose(out[:, -1], series[:, -1])

    def test_linear_series_exact(self):
        out = upsample_series(_ramp_series(n_time=10), 3.0)
        # linear interpolation of a ramp stays a ramp
        assert np.allclose(np.diff(out[0]), np.diff(out[0])[0])

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            upsample_series(_ramp_series(), 0.0)


class TestWindowedExamples:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="identical"):
            WindowedExamples(np.zeros((2, 3, 1)), np.zeros((2, 4, 1)))

    def test_ndim_enforced(self):
        with pytest.raises(ValueError, match="3-D"):
            WindowedExamples(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_subset(self):
        ex = make_windowed_examples(_ramp_series(), window=3)
        sub = ex.subset([0, 2])
        assert sub.n_examples == 2
        np.testing.assert_allclose(sub.inputs[1], ex.inputs[2])

    def test_properties(self):
        ex = make_windowed_examples(_ramp_series(n_modes=3), window=5)
        assert ex.window == 5
        assert ex.n_features == 3


class TestTrainValidationSplit:
    def test_sizes(self):
        ex = make_windowed_examples(_ramp_series(n_time=50), window=4)
        tr, va = train_validation_split(ex, train_fraction=0.8, rng=0)
        assert tr.n_examples + va.n_examples == ex.n_examples
        assert abs(tr.n_examples - round(0.8 * ex.n_examples)) <= 1

    def test_disjoint_and_complete(self):
        ex = make_windowed_examples(_ramp_series(n_time=40), window=4)
        tr, va = train_validation_split(ex, rng=0)
        starts = np.concatenate([tr.inputs[:, 0, 0], va.inputs[:, 0, 0]])
        np.testing.assert_allclose(np.sort(starts),
                                   np.sort(ex.inputs[:, 0, 0]))

    def test_reproducible(self):
        ex = make_windowed_examples(_ramp_series(n_time=40), window=4)
        tr1, _ = train_validation_split(ex, rng=5)
        tr2, _ = train_validation_split(ex, rng=5)
        np.testing.assert_allclose(tr1.inputs, tr2.inputs)

    def test_validation_never_empty(self):
        ex = make_windowed_examples(_ramp_series(n_time=9), window=4)
        tr, va = train_validation_split(ex, train_fraction=0.99, rng=0)
        assert va.n_examples >= 1

    def test_bad_fraction(self):
        ex = make_windowed_examples(_ramp_series(), window=3)
        with pytest.raises(ValueError):
            train_validation_split(ex, train_fraction=1.0)

    def test_single_example_rejected(self):
        """Regression: n_examples == 1 used to return an *empty* train
        set silently; it must raise a clear error instead."""
        ex = make_windowed_examples(_ramp_series(n_time=8), window=4)
        assert ex.n_examples == 1
        with pytest.raises(ValueError, match="at least 2 examples"):
            train_validation_split(ex, rng=0)

    def test_two_examples_split_one_one(self):
        ex = make_windowed_examples(_ramp_series(n_time=9), window=4)
        assert ex.n_examples == 2
        tr, va = train_validation_split(ex, rng=0)
        assert tr.n_examples == 1 and va.n_examples == 1


class TestWindowingProperties:
    @settings(max_examples=25, deadline=None)
    @given(n_time=st.integers(16, 60), window=st.integers(1, 8),
           stride=st.integers(1, 4))
    def test_reconstruction_property(self, n_time, window, stride):
        """Every input/output window is an exact slice of the series."""
        if n_time < 2 * window:
            return
        series = _ramp_series(n_modes=1, n_time=n_time)
        ex = make_windowed_examples(series, window=window, stride=stride)
        for k in range(ex.n_examples):
            s = int(ex.inputs[k, 0, 0])
            np.testing.assert_allclose(ex.inputs[k, :, 0],
                                       np.arange(s, s + window))
            np.testing.assert_allclose(ex.outputs[k, :, 0],
                                       np.arange(s + window, s + 2 * window))
