import numpy as np
import pytest

from repro.pod import fit_pod
from repro.pod.incremental import IncrementalPOD


@pytest.fixture()
def snapshots(rng):
    t = np.linspace(0, 6 * np.pi, 90)
    u1, u2, u3 = (rng.standard_normal(70) for _ in range(3))
    return (np.outer(u1, 5 * np.sin(t)) + np.outer(u2, 2 * np.cos(2 * t))
            + np.outer(u3, 0.5 * np.sin(5 * t))
            + 0.02 * rng.standard_normal((70, 90)) + 3.0)


def subspace_angle(a: np.ndarray, b: np.ndarray) -> float:
    """Largest principal angle (radians) between column spaces."""
    qa, _ = np.linalg.qr(a)
    qb, _ = np.linalg.qr(b)
    sv = np.linalg.svd(qa.T @ qb, compute_uv=False)
    return float(np.arccos(np.clip(sv.min(), -1.0, 1.0)))


class TestIncrementalPOD:
    def test_single_block_matches_batch(self, snapshots):
        inc = IncrementalPOD(n_modes=4).partial_fit(snapshots)
        batch = fit_pod(snapshots, 4, method="svd")
        np.testing.assert_allclose(inc.mean_, batch.stats.mean, atol=1e-10)
        assert subspace_angle(inc.basis().modes, batch.modes) < 1e-6

    def test_blockwise_converges_to_batch(self, snapshots):
        inc = IncrementalPOD(n_modes=8)
        for start in range(0, 90, 15):
            inc.partial_fit(snapshots[:, start:start + 15])
        batch = fit_pod(snapshots, 3, method="svd")
        assert inc.n_seen == 90
        np.testing.assert_allclose(inc.mean_, batch.stats.mean, atol=1e-8)
        # The retained subspace contains the batch-leading 3 modes.
        angle = subspace_angle(batch.modes, inc.basis().modes[:, :8])
        assert angle < 0.05

    def test_energies_close_to_batch(self, snapshots):
        inc = IncrementalPOD(n_modes=8)
        for start in range(0, 90, 30):
            inc.partial_fit(snapshots[:, start:start + 30])
        batch = fit_pod(snapshots, 8, method="svd")
        np.testing.assert_allclose(inc.energies[:3], batch.energies[:3],
                                   rtol=0.02)

    def test_block_order_insensitive_subspace(self, snapshots):
        a = IncrementalPOD(n_modes=8)
        b = IncrementalPOD(n_modes=8)
        blocks = [snapshots[:, i:i + 30] for i in range(0, 90, 30)]
        for blk in blocks:
            a.partial_fit(blk)
        for blk in reversed(blocks):
            b.partial_fit(blk)
        assert subspace_angle(a.basis().modes[:, :3],
                              b.basis().modes[:, :3]) < 0.1

    def test_basis_orthonormal(self, snapshots):
        inc = IncrementalPOD(n_modes=5)
        for start in range(0, 90, 18):
            inc.partial_fit(snapshots[:, start:start + 18])
        modes = inc.basis().modes
        np.testing.assert_allclose(modes.T @ modes,
                                   np.eye(modes.shape[1]), atol=1e-10)

    def test_truncated_basis_request(self, snapshots):
        inc = IncrementalPOD(n_modes=6).partial_fit(snapshots)
        assert inc.basis(2).n_modes == 2
        with pytest.raises(ValueError):
            inc.basis(10)

    def test_dimension_mismatch(self, snapshots, rng):
        inc = IncrementalPOD(n_modes=3).partial_fit(snapshots)
        with pytest.raises(ValueError):
            inc.partial_fit(rng.standard_normal((30, 5)))

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            IncrementalPOD(n_modes=2).basis()

    def test_projection_quality_matches_batch(self, snapshots):
        """Reconstruction through the streamed basis is as good as batch."""
        from repro.pod import projection_error
        inc = IncrementalPOD(n_modes=8)
        for start in range(0, 90, 10):
            inc.partial_fit(snapshots[:, start:start + 10])
        stream_err = projection_error(inc.basis(3), snapshots)
        batch_err = projection_error(fit_pod(snapshots, 3), snapshots)
        assert stream_err < batch_err + 0.01


class TestStateRoundTrip:
    """The exact-capture contract of the continuous pipeline
    (docs/PIPELINE.md): state()/from_state round-trips bitwise and a
    restored instance continues the identical update sequence."""

    def test_round_trip_bitwise(self, snapshots):
        inc = IncrementalPOD(n_modes=5)
        for start in range(0, 90, 18):
            inc.partial_fit(snapshots[:, start:start + 18])
        config, arrays = inc.state()
        restored = IncrementalPOD.from_state(config, arrays)
        np.testing.assert_array_equal(restored.mean_, inc.mean_)
        np.testing.assert_array_equal(restored._modes, inc._modes)
        np.testing.assert_array_equal(restored._singular, inc._singular)
        assert restored.n_seen == inc.n_seen
        assert restored.basis_version == inc.basis_version
        assert restored._weight == inc._weight
        assert restored.forgetting == inc.forgetting

    def test_restored_continues_identically(self, snapshots):
        """restore(state()).partial_fit(block) == self.partial_fit(block),
        bit for bit — the resume guarantee of repro.pipeline."""
        a = IncrementalPOD(n_modes=5)
        for start in range(0, 60, 20):
            a.partial_fit(snapshots[:, start:start + 20])
        b = IncrementalPOD.from_state(*a.state())
        tail = snapshots[:, 60:90]
        a.partial_fit(tail)
        b.partial_fit(tail)
        np.testing.assert_array_equal(a.mean_, b.mean_)
        np.testing.assert_array_equal(a._modes, b._modes)
        np.testing.assert_array_equal(a._singular, b._singular)
        assert a.basis_version == b.basis_version

    def test_empty_state_round_trips(self):
        inc = IncrementalPOD(n_modes=3, forgetting=0.9)
        restored = IncrementalPOD.from_state(*inc.state())
        assert restored.n_seen == 0
        assert restored.basis_version == 0
        assert restored.forgetting == 0.9

    def test_basis_version_counts_updates(self, snapshots):
        inc = IncrementalPOD(n_modes=4)
        assert inc.basis_version == 0
        for i, start in enumerate(range(0, 90, 30)):
            inc.partial_fit(snapshots[:, start:start + 30])
            assert inc.basis_version == i + 1


class TestForgetting:
    def test_forgetting_validated(self):
        with pytest.raises(ValueError):
            IncrementalPOD(n_modes=3, forgetting=0.0)
        with pytest.raises(ValueError):
            IncrementalPOD(n_modes=3, forgetting=1.5)

    def test_forgetting_one_is_exact_historical_behaviour(self, snapshots):
        """forgetting=1.0 must be bitwise identical to the default."""
        a = IncrementalPOD(n_modes=6)
        b = IncrementalPOD(n_modes=6, forgetting=1.0)
        for start in range(0, 90, 30):
            a.partial_fit(snapshots[:, start:start + 30])
            b.partial_fit(snapshots[:, start:start + 30])
        np.testing.assert_array_equal(a.mean_, b.mean_)
        np.testing.assert_array_equal(a._modes, b._modes)
        np.testing.assert_array_equal(a._singular, b._singular)

    def test_forgetting_tracks_regime_change(self, rng):
        """After a subspace switch, a forgetful basis captures the new
        regime better than the equal-weight one."""
        t = np.linspace(0, 6 * np.pi, 60)
        u_old = rng.standard_normal(70)
        u_new = rng.standard_normal(70)
        old = np.outer(u_old, 5 * np.sin(t)) \
            + 0.01 * rng.standard_normal((70, 60))
        new = np.outer(u_new, 5 * np.sin(t)) \
            + 0.01 * rng.standard_normal((70, 60))
        equal = IncrementalPOD(n_modes=2)
        forget = IncrementalPOD(n_modes=2, forgetting=0.3)
        for block in (old[:, :30], old[:, 30:], new[:, :30], new[:, 30:]):
            equal.partial_fit(block)
            forget.partial_fit(block)
        target = (u_new / np.linalg.norm(u_new))[:, None]
        angle_equal = subspace_angle(target, equal.basis(1).modes)
        angle_forget = subspace_angle(target, forget.basis(1).modes)
        assert angle_forget < angle_equal

    def test_forgetting_reduces_effective_weight(self, snapshots):
        inc = IncrementalPOD(n_modes=4, forgetting=0.5)
        for start in range(0, 90, 30):
            inc.partial_fit(snapshots[:, start:start + 30])
        assert inc.n_seen == 90
        # weight = ((30*0.5)+30)*0.5 + 30 = 52.5 < 90
        assert inc._weight == pytest.approx(52.5)
