import numpy as np
import pytest

from repro.pod import fit_pod
from repro.pod.incremental import IncrementalPOD


@pytest.fixture()
def snapshots(rng):
    t = np.linspace(0, 6 * np.pi, 90)
    u1, u2, u3 = (rng.standard_normal(70) for _ in range(3))
    return (np.outer(u1, 5 * np.sin(t)) + np.outer(u2, 2 * np.cos(2 * t))
            + np.outer(u3, 0.5 * np.sin(5 * t))
            + 0.02 * rng.standard_normal((70, 90)) + 3.0)


def subspace_angle(a: np.ndarray, b: np.ndarray) -> float:
    """Largest principal angle (radians) between column spaces."""
    qa, _ = np.linalg.qr(a)
    qb, _ = np.linalg.qr(b)
    sv = np.linalg.svd(qa.T @ qb, compute_uv=False)
    return float(np.arccos(np.clip(sv.min(), -1.0, 1.0)))


class TestIncrementalPOD:
    def test_single_block_matches_batch(self, snapshots):
        inc = IncrementalPOD(n_modes=4).partial_fit(snapshots)
        batch = fit_pod(snapshots, 4, method="svd")
        np.testing.assert_allclose(inc.mean_, batch.stats.mean, atol=1e-10)
        assert subspace_angle(inc.basis().modes, batch.modes) < 1e-6

    def test_blockwise_converges_to_batch(self, snapshots):
        inc = IncrementalPOD(n_modes=8)
        for start in range(0, 90, 15):
            inc.partial_fit(snapshots[:, start:start + 15])
        batch = fit_pod(snapshots, 3, method="svd")
        assert inc.n_seen == 90
        np.testing.assert_allclose(inc.mean_, batch.stats.mean, atol=1e-8)
        # The retained subspace contains the batch-leading 3 modes.
        angle = subspace_angle(batch.modes, inc.basis().modes[:, :8])
        assert angle < 0.05

    def test_energies_close_to_batch(self, snapshots):
        inc = IncrementalPOD(n_modes=8)
        for start in range(0, 90, 30):
            inc.partial_fit(snapshots[:, start:start + 30])
        batch = fit_pod(snapshots, 8, method="svd")
        np.testing.assert_allclose(inc.energies[:3], batch.energies[:3],
                                   rtol=0.02)

    def test_block_order_insensitive_subspace(self, snapshots):
        a = IncrementalPOD(n_modes=8)
        b = IncrementalPOD(n_modes=8)
        blocks = [snapshots[:, i:i + 30] for i in range(0, 90, 30)]
        for blk in blocks:
            a.partial_fit(blk)
        for blk in reversed(blocks):
            b.partial_fit(blk)
        assert subspace_angle(a.basis().modes[:, :3],
                              b.basis().modes[:, :3]) < 0.1

    def test_basis_orthonormal(self, snapshots):
        inc = IncrementalPOD(n_modes=5)
        for start in range(0, 90, 18):
            inc.partial_fit(snapshots[:, start:start + 18])
        modes = inc.basis().modes
        np.testing.assert_allclose(modes.T @ modes,
                                   np.eye(modes.shape[1]), atol=1e-10)

    def test_truncated_basis_request(self, snapshots):
        inc = IncrementalPOD(n_modes=6).partial_fit(snapshots)
        assert inc.basis(2).n_modes == 2
        with pytest.raises(ValueError):
            inc.basis(10)

    def test_dimension_mismatch(self, snapshots, rng):
        inc = IncrementalPOD(n_modes=3).partial_fit(snapshots)
        with pytest.raises(ValueError):
            inc.partial_fit(rng.standard_normal((30, 5)))

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            IncrementalPOD(n_modes=2).basis()

    def test_projection_quality_matches_batch(self, snapshots):
        """Reconstruction through the streamed basis is as good as batch."""
        from repro.pod import projection_error
        inc = IncrementalPOD(n_modes=8)
        for start in range(0, 90, 10):
            inc.partial_fit(snapshots[:, start:start + 10])
        stream_err = projection_error(inc.basis(3), snapshots)
        batch_err = projection_error(fit_pod(snapshots, 3), snapshots)
        assert stream_err < batch_err + 0.01
